// Server base-class behaviour via a minimal concrete subclass.

#include "src/os/server.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/hw/cpu.h"
#include "src/sim/simulation.h"

namespace newtos {
namespace {

class RecordingServer : public Server {
 public:
  RecordingServer(Simulation* sim, Cycles cost) : Server(sim, "rec"), cost_(cost) {
    in_a_ = CreateInput("a", 16);
    in_b_ = CreateInput("b", 16);
  }

  Chan* in_a() { return in_a_; }
  Chan* in_b() { return in_b_; }
  void set_forward(Chan* out) { out_ = out; }

  std::vector<uint64_t> handled;
  std::vector<SimTime> handled_at;

 protected:
  Cycles CostFor(const Msg&) override { return cost_; }
  void Handle(const Msg& msg) override {
    handled.push_back(msg.value);
    handled_at.push_back(sim()->Now());
    if (out_ != nullptr) {
      Emit(out_, msg);
    }
  }

 private:
  Cycles cost_;
  Chan* in_a_ = nullptr;
  Chan* in_b_ = nullptr;
  Chan* out_ = nullptr;
};

Msg V(uint64_t v) {
  Msg m;
  m.type = MsgType::kEvtData;
  m.value = v;
  return m;
}

class ServerTest : public ::testing::Test {
 protected:
  Simulation sim_;
  PowerModel pm_;
  Core core_{&sim_, 0, "cpu", BigCoreOperatingPoints(), &pm_};
};

TEST_F(ServerTest, ProcessesMessagesChargingCycles) {
  core_.set_dvfs_transition_latency(0);
  core_.SetFrequency(1'000'000 * kKhz);  // snaps to 800 MHz
  RecordingServer s(&sim_, 800);         // 1 us per message at 800 MHz
  s.BindCore(&core_);
  s.set_source_batch_limit(1);           // measure per-message spacing
  s.in_a()->Push(V(1));
  s.in_a()->Push(V(2));
  sim_.Run();
  ASSERT_EQ(s.handled.size(), 2u);
  // dequeue overhead (100 cycles) + handler (800) = 900 cycles = 1.125us each.
  EXPECT_EQ(s.handled_at[1] - s.handled_at[0], 1125 * kNanosecond);
}

TEST_F(ServerTest, RoundRobinAcrossInputsWithBatchLimitOne) {
  RecordingServer s(&sim_, 100);
  s.BindCore(&core_);
  s.set_source_batch_limit(1);
  for (int i = 0; i < 3; ++i) {
    s.in_a()->Push(V(10 + i));
    s.in_b()->Push(V(20 + i));
  }
  sim_.Run();
  ASSERT_EQ(s.handled.size(), 6u);
  // Strict alternation between the two sources.
  EXPECT_EQ(s.handled, (std::vector<uint64_t>{10, 20, 11, 21, 12, 22}));
}

TEST_F(ServerTest, BurstSchedulingDrainsOneSourceFirst) {
  RecordingServer s(&sim_, 100);
  s.BindCore(&core_);
  ASSERT_GE(s.source_batch_limit(), 3);  // default bursts
  for (int i = 0; i < 3; ++i) {
    s.in_a()->Push(V(10 + i));
    s.in_b()->Push(V(20 + i));
  }
  sim_.Run();
  ASSERT_EQ(s.handled.size(), 6u);
  // The whole backlog of source a drains before b runs.
  EXPECT_EQ(s.handled, (std::vector<uint64_t>{10, 11, 12, 20, 21, 22}));
}

TEST_F(ServerTest, BurstLimitBoundsConsecutiveDrains) {
  RecordingServer s(&sim_, 100);
  s.BindCore(&core_);
  s.set_source_batch_limit(2);
  for (int i = 0; i < 4; ++i) {
    s.in_a()->Push(V(10 + i));
  }
  s.in_b()->Push(V(20));
  sim_.Run();
  ASSERT_EQ(s.handled.size(), 5u);
  // Two from a, then b gets its turn, then the rest of a.
  EXPECT_EQ(s.handled, (std::vector<uint64_t>{10, 11, 20, 12, 13}));
}

TEST_F(ServerTest, CrashDropsQueuedMessages) {
  RecordingServer s(&sim_, 100);
  s.BindCore(&core_);
  s.in_a()->Push(V(1));
  sim_.Run();
  s.in_a()->Push(V(2));
  s.in_a()->Push(V(3));
  s.Crash();
  sim_.Run();
  EXPECT_EQ(s.handled.size(), 1u);
  EXPECT_EQ(s.messages_lost_to_crash(), 2u);
  EXPECT_TRUE(s.crashed());
}

TEST_F(ServerTest, CrashMidExecutionInvalidatesInFlightWork) {
  RecordingServer s(&sim_, 1'000'000);  // long-running message
  s.BindCore(&core_);
  s.in_a()->Push(V(1));
  sim_.RunFor(10 * kMicrosecond);  // work started but not finished
  s.Crash();
  sim_.Run();
  EXPECT_TRUE(s.handled.empty());  // the generation guard dropped it
}

TEST_F(ServerTest, RestartResumesProcessing) {
  RecordingServer s(&sim_, 100);
  s.BindCore(&core_);
  s.Crash();
  s.Restart(1000);
  sim_.Run();
  EXPECT_FALSE(s.crashed());
  s.in_a()->Push(V(9));
  sim_.Run();
  ASSERT_EQ(s.handled.size(), 1u);
  EXPECT_EQ(s.handled[0], 9u);
}

TEST_F(ServerTest, RestartCostDelaysReadiness) {
  core_.set_dvfs_transition_latency(0);  // exact-timing test
  core_.SetFrequency(1'000'000 * kKhz);  // 800 MHz
  RecordingServer s(&sim_, 100);
  s.BindCore(&core_);
  s.Crash();
  SimTime ready_at = -1;
  s.Restart(800'000, [&] { ready_at = sim_.Now(); });  // 1 ms reboot
  sim_.Run();
  EXPECT_EQ(ready_at, kMillisecond);
}

TEST_F(ServerTest, MessagesArrivingWhileCrashedWaitForRestart) {
  RecordingServer s(&sim_, 100);
  s.BindCore(&core_);
  s.Crash();
  s.in_a()->Push(V(5));  // lands in the (fresh) input queue
  sim_.Run();
  EXPECT_TRUE(s.handled.empty());
  s.Restart(100);
  sim_.Run();
  ASSERT_EQ(s.handled.size(), 1u);
}

TEST_F(ServerTest, IdleObserverSeesTransitions) {
  RecordingServer s(&sim_, 100);
  s.BindCore(&core_);
  std::vector<bool> transitions;
  s.SetIdleObserver([&](bool idle) { transitions.push_back(idle); });
  s.in_a()->Push(V(1));
  sim_.Run();
  // Busy (false) then idle (true) again.
  ASSERT_GE(transitions.size(), 2u);
  EXPECT_FALSE(transitions.front());
  EXPECT_TRUE(transitions.back());
  EXPECT_TRUE(s.Idle());
}

TEST_F(ServerTest, ForwardingBetweenServersWorks) {
  Core core2(&sim_, 1, "cpu1", BigCoreOperatingPoints(), &pm_);
  RecordingServer first(&sim_, 100);
  RecordingServer second(&sim_, 100);
  first.BindCore(&core_);
  second.BindCore(&core2);
  first.set_forward(second.in_a());
  for (int i = 0; i < 5; ++i) {
    first.in_a()->Push(V(i));
  }
  sim_.Run();
  EXPECT_EQ(first.handled.size(), 5u);
  EXPECT_EQ(second.handled.size(), 5u);
  EXPECT_EQ(second.handled, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST_F(ServerTest, TwoServersShareOneCoreSerially) {
  RecordingServer s1(&sim_, 100'000);
  RecordingServer s2(&sim_, 100'000);
  s1.BindCore(&core_);
  s2.BindCore(&core_);
  s1.in_a()->Push(V(1));
  s2.in_a()->Push(V(2));
  sim_.Run();
  ASSERT_EQ(s1.handled.size(), 1u);
  ASSERT_EQ(s2.handled.size(), 1u);
  // Their work items cannot overlap on the shared core.
  EXPECT_NE(s1.handled_at[0], s2.handled_at[0]);
}

TEST_F(ServerTest, TenantSwitchPenaltyChargedOnAlternation) {
  core_.set_dvfs_transition_latency(0);
  core_.SetFrequency(1'000'000 * kKhz);  // 800 MHz
  RecordingServer s1(&sim_, 800);
  RecordingServer s2(&sim_, 800);
  s1.BindCore(&core_);
  s2.BindCore(&core_);
  s1.set_tenant_switch_cycles(400);
  s2.set_tenant_switch_cycles(400);
  s1.in_a()->Push(V(1));
  s2.in_a()->Push(V(2));
  sim_.Run();
  // First message: no previous tenant -> no penalty. Second: s2 follows s1.
  EXPECT_EQ(core_.tenant_switches(), 1u);
  // Per-message base cost = 100 dequeue + 800 work = 900 cycles; the second
  // adds 400 penalty cycles. All serialized on the one core.
  EXPECT_EQ(core_.busy_cycles(), 900 + 900 + 400);
}

TEST_F(ServerTest, SoleTenantNeverPaysSwitchPenalty) {
  RecordingServer s(&sim_, 100);
  s.BindCore(&core_);
  for (int i = 0; i < 10; ++i) {
    s.in_a()->Push(V(i));
  }
  sim_.Run();
  EXPECT_EQ(core_.tenant_switches(), 0u);
}

TEST_F(ServerTest, MessagesProcessedCounter) {
  RecordingServer s(&sim_, 10);
  s.BindCore(&core_);
  for (int i = 0; i < 7; ++i) {
    s.in_a()->Push(V(i));
  }
  sim_.Run();
  EXPECT_EQ(s.messages_processed(), 7u);
}

}  // namespace
}  // namespace newtos
