#include "src/net/packet.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace newtos {
namespace {

TEST(Packet, Ipv4Formatting) {
  EXPECT_EQ(Ipv4ToString(Ipv4(10, 0, 0, 1)), "10.0.0.1");
  EXPECT_EQ(Ipv4ToString(Ipv4(255, 255, 255, 255)), "255.255.255.255");
  EXPECT_EQ(Ipv4ToString(0), "0.0.0.0");
}

TEST(Packet, Ipv4ConstexprPacking) {
  static_assert(Ipv4(1, 2, 3, 4) == 0x01020304u);
  EXPECT_EQ(Ipv4(192, 168, 0, 1), 0xc0a80001u);
}

TEST(Packet, MakePacketAssignsUniqueIds) {
  std::unordered_set<uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.insert(MakePacket()->id);
  }
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(Packet, FrameBytesTcpVsUdp) {
  Packet t;
  t.ip.proto = IpProto::kTcp;
  t.payload_bytes = 100;
  EXPECT_EQ(t.FrameBytes(), kEthHeaderBytes + kIpv4HeaderBytes + kTcpHeaderBytes + 100);
  Packet u;
  u.ip.proto = IpProto::kUdp;
  u.payload_bytes = 100;
  EXPECT_EQ(u.FrameBytes(), kEthHeaderBytes + kIpv4HeaderBytes + kUdpHeaderBytes + 100);
}

TEST(Packet, FlowKeyReversal) {
  const FlowKey k{Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 10, 20};
  const FlowKey r = k.Reversed();
  EXPECT_EQ(r.src_ip, k.dst_ip);
  EXPECT_EQ(r.dst_ip, k.src_ip);
  EXPECT_EQ(r.src_port, k.dst_port);
  EXPECT_EQ(r.dst_port, k.src_port);
  EXPECT_EQ(r.Reversed(), k);
}

TEST(Packet, FlowKeyHashDistinguishesDirections) {
  const FlowKey k{Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 10, 20};
  EXPECT_NE(FlowKeyHash{}(k), FlowKeyHash{}(k.Reversed()));
}

TEST(Packet, PacketFlowKeyUsesRightPorts) {
  Packet t;
  t.ip.proto = IpProto::kTcp;
  t.ip.src = 1;
  t.ip.dst = 2;
  t.tcp.src_port = 7;
  t.tcp.dst_port = 8;
  t.udp.src_port = 9;
  t.udp.dst_port = 10;
  EXPECT_EQ(PacketFlowKey(t).src_port, 7);
  t.ip.proto = IpProto::kUdp;
  EXPECT_EQ(PacketFlowKey(t).src_port, 9);
}

TEST(Packet, ToStringRendersTcpFlags) {
  Packet p;
  p.ip.proto = IpProto::kTcp;
  p.ip.src = Ipv4(10, 0, 0, 1);
  p.ip.dst = Ipv4(10, 0, 0, 2);
  p.tcp.flags = kTcpSyn | kTcpAck;
  const std::string s = p.ToString();
  EXPECT_NE(s.find("SA"), std::string::npos);
  EXPECT_NE(s.find("10.0.0.1"), std::string::npos);
}

TEST(Packet, TcpHeaderFlagHelpers) {
  TcpHeader h;
  h.flags = kTcpSyn | kTcpAck;
  EXPECT_TRUE(h.syn());
  EXPECT_TRUE(h.ack_flag());
  EXPECT_FALSE(h.fin());
  EXPECT_FALSE(h.rst());
}

}  // namespace
}  // namespace newtos
