// Campaign determinism and the resilience acceptance bar (Tab. 7).

#include "src/fault/campaign.h"

#include <gtest/gtest.h>

namespace newtos {
namespace {

// A reduced sweep keeps the test fast while still crossing every judging
// path: a channel fault, a wire fault, and a server fault.
CampaignOptions ReducedOptions() {
  CampaignOptions opt;
  opt.stack_freqs = {1'200'000 * kKhz};
  opt.faults = {
      {FaultClass::kChanDrop, "ip"},
      {FaultClass::kWireBitFlip, ""},
      {FaultClass::kServerHang, "ip"},
  };
  return opt;
}

TEST(FaultCampaign, SameSeedYieldsByteIdenticalCsv) {
  CampaignRunner a(ReducedOptions());
  a.Run();
  CampaignRunner b(ReducedOptions());
  b.Run();
  const std::string csv_a = a.ToCsv();
  EXPECT_FALSE(csv_a.empty());
  EXPECT_EQ(csv_a, b.ToCsv()) << "the resilience matrix must be a pure function of the seed";
}

TEST(FaultCampaign, DifferentSeedChangesTheMatrix) {
  CampaignOptions opt = ReducedOptions();
  opt.faults = {{FaultClass::kChanDrop, "ip"}};
  CampaignRunner a(opt);
  a.Run();
  opt.seed = 99;
  CampaignRunner b(opt);
  b.Run();
  // Same verdicts are fine; the delivered-byte digests must diverge.
  EXPECT_NE(a.cells()[0].digest, b.cells()[0].digest);
}

TEST(FaultCampaign, ReducedSweepPasses) {
  CampaignRunner runner(ReducedOptions());
  for (const CampaignCell& c : runner.Run()) {
    EXPECT_TRUE(c.pass) << FaultClassName(c.cls) << " @" << c.stack_freq << " kHz";
    EXPECT_GT(c.injected, 0u);
    EXPECT_TRUE(c.integrity);
    EXPECT_TRUE(c.progress);
  }
}

TEST(FaultCampaign, HangsRecoverWithinBoundAtBothFrequencies) {
  // The acceptance criterion: an injected hang is detected by the watchdog
  // and recovered within the configured bound with the stack both at full
  // speed and slowed to a third.
  CampaignOptions opt;
  opt.stack_freqs = {3'600'000 * kKhz, 1'200'000 * kKhz};
  opt.faults = {
      {FaultClass::kServerHang, "driver"},
      {FaultClass::kServerHang, "ip"},
      {FaultClass::kServerHang, "tcp"},
  };
  CampaignRunner runner(opt);
  for (const CampaignCell& c : runner.Run()) {
    EXPECT_TRUE(c.detected) << c.target << " @" << c.stack_freq << " kHz";
    EXPECT_TRUE(c.recovered) << c.target << " @" << c.stack_freq << " kHz";
    EXPECT_TRUE(c.pass) << c.target << " @" << c.stack_freq << " kHz";
    EXPECT_GE(c.detect_ms, 0.0);
    EXPECT_LT(c.detect_ms + c.recover_ms,
              static_cast<double>(opt.recovery_bound) / kMillisecond);
  }
}

}  // namespace
}  // namespace newtos
