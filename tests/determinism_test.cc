// Determinism regression: the repo's core invariant is that every simulation
// is bit-for-bit reproducible. These tests run short fig2-style scenarios
// twice and compare full trace hashes, and also compare against checked-in
// golden hashes so that any engine change that reorders events, alters
// timer behaviour, or perturbs protocol dynamics fails loudly.
//
// The goldens were captured from the seed engine (PR 1). An engine change
// that is supposed to be behaviour-preserving (e.g. a faster event queue)
// must reproduce them exactly. If a change is *intended* to alter event
// ordering, update the goldens in the same commit and say why.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "src/core/steering.h"
#include "src/core/testbed.h"
#include "src/trace/stack_trace.h"
#include "src/workload/iperf.h"

namespace newtos {
namespace {

// FNV-1a over a stream of integers: order-sensitive, so any reordering of
// the folded quantities changes the hash.
class TraceHasher {
 public:
  void Fold(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  uint64_t hash() const { return h_; }

 private:
  uint64_t h_ = 0xcbf29ce484222325ULL;
};

// Tracing configuration for a hashed run. kNoSamplers records spans, hops
// and instants only — that path schedules no simulation events, so even the
// event count must match an untraced run. kWithSamplers adds the periodic
// counter ticks, which do raise events_processed but must never touch
// model-observable state.
enum class Tracing { kNone, kNoSamplers, kWithSamplers };

// Runs a bulk-TCP transmit scenario and hashes every integer observable the
// engine influences: event counts, NIC counters on both ends, delivered
// bytes, and TCP protocol statistics. `fold_event_count` is false only for
// sampler comparisons, where the tick events legitimately inflate
// events_processed without perturbing the model.
uint64_t BulkTraceHash(FreqKhz stack_freq, double loss, Tracing tracing = Tracing::kNone,
                       bool fold_event_count = true) {
  TestbedOptions options;
  options.link_loss = loss;
  Testbed tb(options);
  DedicatedSlowPlan(*tb.stack(), stack_freq, 3'600'000 * kKhz).Apply(tb.machine());

  std::unique_ptr<StackTracer> tracer;
  if (tracing != Tracing::kNone) {
    StackTracer::Options topt;
    topt.ring_capacity = 1 << 16;
    topt.samplers = tracing == Tracing::kWithSamplers;
    tracer = std::make_unique<StackTracer>(&tb.sim(), tb.stack(), topt);
    tracer->Enable();
  }

  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();

  tb.sim().RunFor(60 * kMillisecond);

  TraceHasher h;
  h.Fold(static_cast<uint64_t>(tb.sim().Now()));
  if (fold_event_count) {
    h.Fold(tb.sim().events_processed());
  }
  const Nic::Stats& sut = tb.machine().nic()->stats();
  h.Fold(sut.tx_packets);
  h.Fold(sut.tx_bytes);
  h.Fold(sut.rx_packets);
  h.Fold(sut.rx_bytes);
  h.Fold(sut.rx_ring_drops);
  h.Fold(sut.link_loss_drops);
  const Nic::Stats& peer = tb.peer().nic()->stats();
  h.Fold(peer.tx_packets);
  h.Fold(peer.tx_bytes);
  h.Fold(peer.rx_packets);
  h.Fold(peer.rx_bytes);
  h.Fold(peer.link_loss_drops);
  h.Fold(sink.total_bytes());
  h.Fold(sender.bytes_submitted());
  for (TcpConnection* c : tb.peer().tcp().Connections()) {
    const TcpStats& s = c->stats();
    h.Fold(s.segs_sent);
    h.Fold(s.segs_rcvd);
    h.Fold(s.bytes_received);
    h.Fold(s.retransmits);
    h.Fold(s.timeouts);
    h.Fold(s.dupacks_rcvd);
    h.Fold(s.ooo_segments);
  }
  return h.hash();
}

// Golden hashes captured from the seed engine. See file comment.
// Updated when TCP timers moved onto the per-host TimerWheel: one wheel wake
// services many timers (and adds refinement/spurious wakes), so the folded
// events_processed count legitimately changed. The kModelGolden* hashes below
// — which fold everything EXCEPT the event count — were captured before the
// wheel landed and did NOT change, proving every model observable (clock,
// NIC/TCP stats, delivered bytes) is bit-identical across the swap.
constexpr uint64_t kGoldenLossFree = 1972112905509978111ULL;
// The two lossy goldens moved once more when the RFC 6298 (5.7) backoff fix
// landed: the RTO backoff now survives ACKs of retransmitted (Karn-ambiguous)
// segments and resets only on a fresh RTT sample, so a lossy run's retransmit
// timing genuinely differs. Loss-free runs never back off — their goldens
// (including the model hashes) were unchanged by the fix, isolating it.
constexpr uint64_t kGoldenLossy = 17170910876694530383ULL;
constexpr uint64_t kGoldenKnee = 13674864198849013015ULL;

// Model-observable goldens: the same scenarios hashed WITHOUT the event
// count. The timer wheel fires many timers from one wake event and adds
// refinement/spurious wakes, so events_processed legitimately differs from
// the per-flow-timer engine — but everything the model observes (clock, NIC
// counters, delivered bytes, TCP statistics, retransmit/timeout counts) must
// stay bit-identical. These pins were captured from the pre-wheel engine and
// must survive any timer-plumbing change unchanged.
constexpr uint64_t kModelGoldenLossFree = 6471226184126256291ULL;
constexpr uint64_t kModelGoldenLossy = 12270079500720023140ULL;  // see (5.7) note above
constexpr uint64_t kModelGoldenKnee = 6696381601528932251ULL;

TEST(Determinism, MatchesModelGoldenLossFree) {
  EXPECT_EQ(BulkTraceHash(3'600'000 * kKhz, 0.0, Tracing::kNone, /*fold_event_count=*/false),
            kModelGoldenLossFree)
      << "model observables diverged (loss-free bulk TX)";
}

TEST(Determinism, MatchesModelGoldenLossy) {
  EXPECT_EQ(BulkTraceHash(3'600'000 * kKhz, 0.01, Tracing::kNone, /*fold_event_count=*/false),
            kModelGoldenLossy)
      << "model observables diverged (1% loss bulk TX)";
}

TEST(Determinism, MatchesModelGoldenAtKneeFrequency) {
  EXPECT_EQ(BulkTraceHash(2'000'000 * kKhz, 0.0, Tracing::kNone, /*fold_event_count=*/false),
            kModelGoldenKnee)
      << "model observables diverged (knee frequency)";
}

TEST(Determinism, RepeatedRunsAreBitIdentical) {
  const uint64_t a = BulkTraceHash(3'600'000 * kKhz, 0.0);
  const uint64_t b = BulkTraceHash(3'600'000 * kKhz, 0.0);
  EXPECT_EQ(a, b);
}

TEST(Determinism, RepeatedLossyRunsAreBitIdentical) {
  // Loss exercises RTO timers, cancellation churn, and out-of-order paths.
  const uint64_t a = BulkTraceHash(3'600'000 * kKhz, 0.01);
  const uint64_t b = BulkTraceHash(3'600'000 * kKhz, 0.01);
  EXPECT_EQ(a, b);
}

TEST(Determinism, MatchesGoldenLossFree) {
  EXPECT_EQ(BulkTraceHash(3'600'000 * kKhz, 0.0), kGoldenLossFree)
      << "engine trace diverged from the seed-captured golden (loss-free bulk TX)";
}

TEST(Determinism, MatchesGoldenLossy) {
  EXPECT_EQ(BulkTraceHash(3'600'000 * kKhz, 0.01), kGoldenLossy)
      << "engine trace diverged from the seed-captured golden (1% loss bulk TX)";
}

TEST(Determinism, MatchesGoldenAtKneeFrequency) {
  // 2.0 GHz: the fig2 knee, where stack cores saturate and RX rings drop.
  EXPECT_EQ(BulkTraceHash(2'000'000 * kKhz, 0.0), kGoldenKnee)
      << "engine trace diverged from the seed-captured golden (knee frequency)";
}

TEST(Determinism, SpanTracingDoesNotPerturbTheGolden) {
  // Span/hop/instant recording schedules no events and touches no model
  // state, so a fully traced run must reproduce the untraced golden exactly —
  // including the event count.
  EXPECT_EQ(BulkTraceHash(3'600'000 * kKhz, 0.0, Tracing::kNoSamplers), kGoldenLossFree)
      << "tracing perturbed the simulation (loss-free bulk TX)";
}

TEST(Determinism, SpanTracingDoesNotPerturbTheLossyGolden) {
  // The lossy path exercises RTO timers and retransmit ordering; tracing
  // must not shift any of it.
  EXPECT_EQ(BulkTraceHash(3'600'000 * kKhz, 0.01, Tracing::kNoSamplers), kGoldenLossy)
      << "tracing perturbed the simulation (1% loss bulk TX)";
}

TEST(Determinism, SamplersDoNotPerturbModelObservables) {
  // Counter sampling adds tick events (events_processed grows), but every
  // model observable — NIC counters, delivered bytes, TCP statistics — must
  // be bit-identical to an untraced run.
  const uint64_t untraced = BulkTraceHash(3'600'000 * kKhz, 0.01, Tracing::kNone,
                                          /*fold_event_count=*/false);
  const uint64_t sampled = BulkTraceHash(3'600'000 * kKhz, 0.01, Tracing::kWithSamplers,
                                         /*fold_event_count=*/false);
  EXPECT_EQ(untraced, sampled) << "sampler ticks perturbed model-observable state";
}

}  // namespace
}  // namespace newtos
