// Tests for the hierarchical timing wheel (src/sim/timer_wheel.h).
//
// The load-bearing property is deadline exactness: timers fire at the exact
// picosecond they were armed for — across level boundaries, cascades,
// far-future parking, cancel/re-arm churn, and same-instant bursts — in the
// same order the plain event-queue implementation would fire them. The
// randomized harness at the bottom runs an identical arm/cancel script
// against both implementations and demands identical fire logs.

#include "src/sim/timer_wheel.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace newtos {
namespace {

using FireLog = std::vector<std::pair<SimTime, int>>;

// A timer that logs (now, id) when it fires.
struct WheelTimer {
  WheelTimer(Simulation* s, TimerWheel* w, int i, FireLog* l)
      : sim(s), wheel(w), id(i), log(l), node(&WheelTimer::Fire, this) {}

  static void Fire(void* arg) {
    auto* t = static_cast<WheelTimer*>(arg);
    t->log->emplace_back(t->sim->Now(), t->id);
  }

  Simulation* sim;
  TimerWheel* wheel;
  int id;
  FireLog* log;
  TimerNode node;
};

class WheelFixture {
 public:
  WheelFixture() : wheel_(&sim_) {}

  WheelTimer* NewTimer() {
    timers_.push_back(
        std::make_unique<WheelTimer>(&sim_, &wheel_, static_cast<int>(timers_.size()), &log_));
    return timers_.back().get();
  }

  Simulation sim_;
  TimerWheel wheel_;
  FireLog log_;
  std::vector<std::unique_ptr<WheelTimer>> timers_;
};

TEST(TimerWheel, FiresAtExactDeadline) {
  WheelFixture f;
  WheelTimer* t = f.NewTimer();
  // Odd low bits: any tick rounding would show up immediately.
  const SimTime deadline = 50 * kMillisecond + 7;
  f.wheel_.Arm(&t->node, deadline);
  EXPECT_TRUE(t->node.armed());
  EXPECT_EQ(t->node.deadline(), deadline);
  f.sim_.RunFor(60 * kMillisecond);
  ASSERT_EQ(f.log_.size(), 1u);
  EXPECT_EQ(f.log_[0], std::make_pair(deadline, 0));
  EXPECT_FALSE(t->node.armed());
  EXPECT_EQ(f.wheel_.armed(), 0u);
}

TEST(TimerWheel, ExactAcrossEveryLevelBoundary) {
  // Level-k windows end at 2^(26+6k) ps; deadlines straddling each boundary
  // must cascade down and still fire at their exact picosecond. Run the
  // whole set from both an aligned and a deliberately odd start time.
  for (SimTime start : {SimTime{0}, SimTime{123456789}}) {
    WheelFixture f;
    f.sim_.RunFor(start);
    std::vector<SimTime> deadlines;
    for (int k = 0; k <= 4; ++k) {
      const SimTime window = SimTime{1} << (26 + 6 * k);
      deadlines.push_back(start + window - 1);
      deadlines.push_back(start + window);
      deadlines.push_back(start + window + 1);
    }
    for (SimTime d : deadlines) {
      f.wheel_.Arm(&f.NewTimer()->node, d);
    }
    f.sim_.RunFor(SimTime{1} << 51);
    ASSERT_EQ(f.log_.size(), deadlines.size()) << "start=" << start;
    for (size_t i = 0; i < deadlines.size(); ++i) {
      // Fires come back in deadline order; deadlines were generated sorted.
      EXPECT_EQ(f.log_[i].first, deadlines[i]) << "start=" << start;
      EXPECT_EQ(f.log_[i].second, static_cast<int>(i));
    }
    EXPECT_GT(f.wheel_.cascades(), 0u);
  }
}

TEST(TimerWheel, FarFutureDeadlineParksAndReCascades) {
  // Beyond the top level's 2^56 ps (~20 h) window the node parks in the
  // farthest top slot and re-cascades as the cursor approaches. ~3 days out
  // takes several re-parks; the fire must still be exact.
  WheelFixture f;
  const SimTime deadline = (SimTime{1} << 58) + 12345;
  f.wheel_.Arm(&f.NewTimer()->node, deadline);
  f.sim_.RunFor((SimTime{1} << 58) + kSecond);
  ASSERT_EQ(f.log_.size(), 1u);
  EXPECT_EQ(f.log_[0].first, deadline);
  EXPECT_GT(f.wheel_.cascades(), 0u);
}

TEST(TimerWheel, OnePendingEventRegardlessOfArmedCount) {
  WheelFixture f;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const SimTime d = static_cast<SimTime>(rng() % (SimTime{1} << 40)) + 1;
    f.wheel_.Arm(&f.NewTimer()->node, d);
  }
  EXPECT_EQ(f.wheel_.armed(), 1000u);
  // The tentpole claim: one pending wake event for the whole wheel, not one
  // event per flow timer.
  EXPECT_EQ(f.sim_.PendingEvents(), 1u);
  f.sim_.RunFor(SimTime{1} << 41);
  EXPECT_EQ(f.log_.size(), 1000u);
  EXPECT_EQ(f.wheel_.armed(), 0u);
}

TEST(TimerWheel, SameInstantFiresInArmOrder) {
  WheelFixture f;
  const SimTime deadline = 3 * kMillisecond + 17;
  // Arm in a shuffled id order; fire order must match *arm* order.
  const int arm_order[] = {3, 0, 4, 1, 2};
  for (int i = 0; i < 5; ++i) {
    f.NewTimer();
  }
  for (int id : arm_order) {
    f.wheel_.Arm(&f.timers_[id]->node, deadline);
  }
  f.sim_.RunFor(4 * kMillisecond);
  ASSERT_EQ(f.log_.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(f.log_[i], std::make_pair(deadline, arm_order[i]));
  }
}

TEST(TimerWheel, ReArmMovesToBackOfSameInstantOrder) {
  WheelFixture f;
  const SimTime deadline = kMillisecond;
  WheelTimer* a = f.NewTimer();
  WheelTimer* b = f.NewTimer();
  f.wheel_.Arm(&a->node, deadline);
  f.wheel_.Arm(&b->node, deadline);
  f.wheel_.Arm(&a->node, deadline);  // re-arm: a now behind b
  EXPECT_EQ(f.wheel_.armed(), 2u);
  f.sim_.RunFor(2 * kMillisecond);
  ASSERT_EQ(f.log_.size(), 2u);
  EXPECT_EQ(f.log_[0].second, 1);
  EXPECT_EQ(f.log_[1].second, 0);
}

TEST(TimerWheel, CancelledTimerNeverFiresAndStaleWakeIsHarmless) {
  WheelFixture f;
  WheelTimer* a = f.NewTimer();
  WheelTimer* b = f.NewTimer();
  f.wheel_.Arm(&a->node, 10 * kMicrosecond);   // earliest: owns the wake
  f.wheel_.Arm(&b->node, 40 * kMillisecond);
  f.wheel_.Cancel(&a->node);                   // wake at 10 us is now stale
  EXPECT_FALSE(a->node.armed());
  f.sim_.RunFor(50 * kMillisecond);
  ASSERT_EQ(f.log_.size(), 1u);
  EXPECT_EQ(f.log_[0], std::make_pair(SimTime{40 * kMillisecond}, 1));
  // The stale wake fired, found nothing due, and re-scheduled from the
  // wheel contents without touching any timer.
  EXPECT_GE(f.wheel_.spurious_wakes(), 1u);
}

TEST(TimerWheel, ZeroDelayAndPastDeadlinesClampAndFire) {
  WheelFixture f;
  f.sim_.RunFor(kMillisecond);
  WheelTimer* a = f.NewTimer();
  WheelTimer* b = f.NewTimer();
  f.wheel_.Arm(&a->node, f.sim_.Now());       // due immediately
  f.wheel_.Arm(&b->node, f.sim_.Now() - 55);  // past: clamps, due immediately
  f.sim_.RunFor(1);
  ASSERT_EQ(f.log_.size(), 2u);
  EXPECT_EQ(f.log_[0].first, kMillisecond);
  EXPECT_EQ(f.log_[1].first, kMillisecond);
}

TEST(TimerWheel, ReArmFromCallbackIsPeriodic) {
  WheelFixture f;
  struct Periodic {
    TimerWheel* wheel;
    Simulation* sim;
    FireLog* log;
    SimTime period;
    int remaining;
    TimerNode node;
    static void Fire(void* arg) {
      auto* p = static_cast<Periodic*>(arg);
      p->log->emplace_back(p->sim->Now(), 0);
      if (--p->remaining > 0) {
        p->wheel->Arm(&p->node, p->sim->Now() + p->period);
      }
    }
  };
  Periodic p{&f.wheel_, &f.sim_, &f.log_, 250 * kMicrosecond + 3, 8,
             TimerNode(&Periodic::Fire, &p)};
  f.wheel_.Arm(&p.node, p.period);
  f.sim_.RunFor(10 * kMillisecond);
  ASSERT_EQ(f.log_.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(f.log_[i].first, (i + 1) * p.period);
  }
}

TEST(TimerWheel, CancelRearmChurnLeavesWheelConsistent) {
  WheelFixture f;
  std::mt19937_64 rng(42);
  constexpr int kTimers = 64;
  for (int i = 0; i < kTimers; ++i) {
    f.NewTimer();
  }
  std::vector<SimTime> expected;
  for (int round = 0; round < 50; ++round) {
    const SimTime base = f.sim_.Now();
    // Arm everything, then cancel half, then re-arm a quarter: nodes move
    // between levels and slots while stale wakes pile up.
    for (int i = 0; i < kTimers; ++i) {
      f.wheel_.Arm(&f.timers_[i]->node, base + 1 + static_cast<SimTime>(rng() % (kSecond / 4)));
    }
    for (int i = 0; i < kTimers; i += 2) {
      f.wheel_.Cancel(&f.timers_[i]->node);
    }
    for (int i = 0; i < kTimers; i += 4) {
      f.wheel_.Arm(&f.timers_[i]->node, base + 1 + static_cast<SimTime>(rng() % (kSecond / 4)));
    }
    for (int i = 0; i < kTimers; ++i) {
      if (f.timers_[i]->node.armed()) {
        expected.push_back(f.timers_[i]->node.deadline());
      }
    }
    f.sim_.RunFor(kSecond / 2);
    EXPECT_EQ(f.wheel_.armed(), 0u) << "round " << round;
  }
  ASSERT_EQ(f.log_.size(), expected.size());
  std::sort(expected.begin(), expected.end());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(f.log_[i].first, expected[i]);
  }
  EXPECT_GE(f.wheel_.spurious_wakes(), 1u);
}

TEST(TimerWheel, CallbackMayCancelAndDestroySiblingDueNode) {
  // Two timers due at the same instant; the first one's callback cancels and
  // destroys the second (the reap pattern: a fired timer tears down another
  // object that also had a timer pending). The second must not fire and the
  // wheel must not touch its freed node.
  struct Reaper {
    TimerWheel* wheel;
    std::unique_ptr<WheelTimer>* victim;
    int* fired;
    TimerNode node;
    static void Fire(void* arg) {
      auto* r = static_cast<Reaper*>(arg);
      ++*r->fired;
      r->wheel->Cancel(&(*r->victim)->node);
      r->victim->reset();
    }
  };
  WheelFixture f;
  int reaper_fired = 0;
  auto victim = std::make_unique<WheelTimer>(&f.sim_, &f.wheel_, 99, &f.log_);
  Reaper reaper{&f.wheel_, &victim, &reaper_fired, TimerNode(&Reaper::Fire, &reaper)};
  const SimTime deadline = 5 * kMillisecond;
  f.wheel_.Arm(&reaper.node, deadline);         // armed first: fires first
  f.wheel_.Arm(&victim->node, deadline);
  f.sim_.RunFor(10 * kMillisecond);
  EXPECT_EQ(reaper_fired, 1);
  EXPECT_TRUE(f.log_.empty());  // the victim never fired
  EXPECT_EQ(f.wheel_.armed(), 0u);
}

// --- Randomized equivalence against the reference EventQueue path ---

// A timer implemented the old way: one per-flow event in the global queue.
struct RefTimer {
  Simulation* sim;
  int id;
  FireLog* log;
  EventHandle handle;

  void Arm(SimTime deadline) {
    handle.Cancel();
    handle = sim->ScheduleAt(deadline, [this] { log->emplace_back(sim->Now(), id); });
  }
  void Cancel() { handle.Cancel(); }
};

struct ScriptOp {
  SimTime at;       // when the operation executes
  int timer;        // which timer it targets
  bool cancel;      // false: arm for `deadline`
  SimTime deadline;
};

TEST(TimerWheel, RandomizedEquivalenceWithEventQueue) {
  // One arm/cancel script, two executions: wheel vs reference. Fire logs
  // must match exactly — same picosecond times, same order. Delays are
  // drawn log-uniformly from ~1 us to ~70 ms so every wheel level and the
  // cascade machinery participate.
  constexpr int kTimers = 48;
  constexpr int kOps = 1500;
  std::mt19937_64 rng(20260808);
  std::vector<ScriptOp> script;
  SimTime cursor = 0;
  for (int i = 0; i < kOps; ++i) {
    cursor += 1 + static_cast<SimTime>(rng() % (100 * kMicrosecond));
    ScriptOp op;
    op.at = cursor;
    op.timer = static_cast<int>(rng() % kTimers);
    op.cancel = (rng() % 4) == 0;  // 25% cancels, 75% (re-)arms
    const int shift = 20 + static_cast<int>(rng() % 17);  // 2^20..2^36 ps
    op.deadline = cursor + (SimTime{1} << shift) + static_cast<SimTime>(rng() % 1000);
    script.push_back(op);
  }

  // Wheel execution.
  FireLog wheel_log;
  {
    WheelFixture f;
    f.log_.reserve(kOps);
    for (int i = 0; i < kTimers; ++i) {
      f.NewTimer();
    }
    for (const ScriptOp& op : script) {
      f.sim_.ScheduleAt(op.at, [&f, &op] {
        if (op.cancel) {
          f.wheel_.Cancel(&f.timers_[op.timer]->node);
        } else {
          f.wheel_.Arm(&f.timers_[op.timer]->node, op.deadline);
        }
      });
    }
    f.sim_.Run();
    EXPECT_EQ(f.wheel_.armed(), 0u);
    wheel_log = f.log_;
  }

  // Reference execution.
  FireLog ref_log;
  {
    Simulation sim;
    std::vector<RefTimer> timers;
    timers.reserve(kTimers);
    for (int i = 0; i < kTimers; ++i) {
      timers.push_back(RefTimer{&sim, i, &ref_log, EventHandle()});
    }
    for (const ScriptOp& op : script) {
      sim.ScheduleAt(op.at, [&timers, &op] {
        if (op.cancel) {
          timers[op.timer].Cancel();
        } else {
          timers[op.timer].Arm(op.deadline);
        }
      });
    }
    sim.Run();
  }

  ASSERT_FALSE(ref_log.empty());
  ASSERT_EQ(wheel_log.size(), ref_log.size());
  for (size_t i = 0; i < ref_log.size(); ++i) {
    EXPECT_EQ(wheel_log[i].first, ref_log[i].first) << "fire " << i;
    EXPECT_EQ(wheel_log[i].second, ref_log[i].second) << "fire " << i;
  }
}

}  // namespace
}  // namespace newtos
