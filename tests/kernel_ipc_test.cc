#include "src/chan/kernel_ipc.h"

#include <gtest/gtest.h>

namespace newtos {
namespace {

TEST(KernelIpc, OneWayIncludesTrapSwitchAndCopy) {
  KernelIpcCosts costs;
  const Cycles zero_byte = costs.OneWayCycles(0);
  EXPECT_EQ(zero_byte,
            2 * costs.trap_cycles + costs.context_switch_cycles + costs.kernel_copy_setup_cycles);
  // Bytes add the per-byte copy cost.
  EXPECT_EQ(costs.OneWayCycles(1000), zero_byte + 500);
}

TEST(KernelIpc, RoundTripIsTwoOneWays) {
  KernelIpcCosts costs;
  EXPECT_EQ(costs.RoundTripCycles(64), 2 * costs.OneWayCycles(64));
}

TEST(KernelIpc, ChannelPathIsMuchCheaper) {
  KernelIpcCosts kernel;
  ChannelCostModel chan;
  for (size_t bytes : {0u, 64u, 256u, 1024u}) {
    const Cycles k = kernel.OneWayCycles(bytes);
    const Cycles c = ChannelOneWayCycles(chan, bytes);
    EXPECT_GT(k, 5 * c) << "bytes=" << bytes
                        << ": the paper's motivation is a ~10x gap at small sizes";
  }
}

TEST(KernelIpc, GapNarrowsWithMessageSize) {
  // Copies dominate for huge messages, shrinking the relative advantage.
  KernelIpcCosts kernel;
  ChannelCostModel chan;
  const double ratio_small = static_cast<double>(kernel.OneWayCycles(16)) /
                             static_cast<double>(ChannelOneWayCycles(chan, 16));
  const double ratio_large = static_cast<double>(kernel.OneWayCycles(64 * 1024)) /
                             static_cast<double>(ChannelOneWayCycles(chan, 64 * 1024));
  EXPECT_GT(ratio_small, ratio_large);
}

TEST(KernelIpc, MonotoneInBytes) {
  KernelIpcCosts kernel;
  Cycles prev = -1;
  for (size_t b = 0; b <= 4096; b += 128) {
    const Cycles c = kernel.OneWayCycles(b);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

}  // namespace
}  // namespace newtos
