// PcapWriter + NIC tap: captures must be valid pcap containing the traffic.

#include "src/net/pcap.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "src/core/testbed.h"
#include "src/net/codec.h"
#include "src/workload/iperf.h"

namespace newtos {
namespace {

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(f)),
                              std::istreambuf_iterator<char>());
}

uint32_t Le32(const std::vector<uint8_t>& b, size_t at) {
  return static_cast<uint32_t>(b[at]) | (static_cast<uint32_t>(b[at + 1]) << 8) |
         (static_cast<uint32_t>(b[at + 2]) << 16) | (static_cast<uint32_t>(b[at + 3]) << 24);
}

class PcapTest : public ::testing::Test {
 protected:
  void SetUp() override { path_ = ::testing::TempDir() + "/newtos_capture.pcap"; }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(PcapTest, GlobalHeaderIsValid) {
  {
    PcapWriter w(path_);
    ASSERT_TRUE(w.ok());
  }
  const auto bytes = ReadFile(path_);
  ASSERT_EQ(bytes.size(), 24u);
  EXPECT_EQ(Le32(bytes, 0), 0xa1b2c3d4u);  // magic
  EXPECT_EQ(Le32(bytes, 20), 1u);          // linktype Ethernet
}

TEST_F(PcapTest, WrittenPacketRoundTripsThroughTheCodec) {
  PacketPtr p = MakePacket();
  p->ip.proto = IpProto::kTcp;
  p->ip.src = Ipv4(10, 0, 0, 1);
  p->ip.dst = Ipv4(10, 0, 0, 2);
  p->tcp.src_port = 1234;
  p->tcp.dst_port = 80;
  p->payload_bytes = 100;
  {
    PcapWriter w(path_);
    w.Write(*p, 1500 * kMillisecond);
    EXPECT_EQ(w.packets_written(), 1u);
  }
  const auto bytes = ReadFile(path_);
  ASSERT_GE(bytes.size(), 24u + 16u);
  // Record header: ts=1.5s, caplen == len == frame size.
  EXPECT_EQ(Le32(bytes, 24), 1u);        // ts_sec
  EXPECT_EQ(Le32(bytes, 28), 500000u);   // ts_usec
  const uint32_t caplen = Le32(bytes, 32);
  EXPECT_EQ(caplen, p->FrameBytes());
  EXPECT_EQ(Le32(bytes, 36), caplen);
  ASSERT_EQ(bytes.size(), 24u + 16u + caplen);
  // The captured frame parses back with intact checksums.
  std::vector<uint8_t> frame(bytes.begin() + 40, bytes.end());
  auto parsed = ParsePacket(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->ip_checksum_ok);
  EXPECT_TRUE(parsed->l4_checksum_ok);
  EXPECT_EQ(parsed->packet.tcp.dst_port, 80);
  EXPECT_EQ(parsed->packet.payload_bytes, 100u);
}

TEST_F(PcapTest, UnopenableePathReportsNotOk) {
  PcapWriter w("/nonexistent-dir/capture.pcap");
  EXPECT_FALSE(w.ok());
  Packet p;
  w.Write(p, 0);  // safe no-op
  EXPECT_EQ(w.packets_written(), 0u);
}

TEST_F(PcapTest, NicTapCapturesLiveTraffic) {
  Testbed tb;
  PcapWriter w(path_);
  uint64_t tx = 0, rx = 0;
  tb.machine().nic()->SetTap([&](Nic::TapDirection dir, const PacketPtr& p) {
    (dir == Nic::TapDirection::kTx ? tx : rx) += 1;
    w.Write(*p, tb.sim().Now());
  });

  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();
  tb.sim().RunFor(20 * kMillisecond);

  EXPECT_GT(tx, 1000u);  // data segments out
  EXPECT_GT(rx, 400u);   // acks in
  EXPECT_EQ(w.packets_written(), tx + rx);
  w.Flush();
  const auto bytes = ReadFile(path_);
  EXPECT_GT(bytes.size(), 24u + (tx + rx) * 16u);  // headers + payload bytes
}

}  // namespace
}  // namespace newtos
