#include "src/hw/nic.h"

#include <gtest/gtest.h>

#include "src/sim/simulation.h"

namespace newtos {
namespace {

PacketPtr Frame(uint32_t payload) {
  PacketPtr p = MakePacket();
  p->ip.proto = IpProto::kTcp;
  p->payload_bytes = payload;
  return p;
}

class NicTest : public ::testing::Test {
 protected:
  void Attach(SimTime prop = 2 * kMicrosecond, double loss = 0.0) {
    a_.AttachPeer(&b_, prop, loss, 7);
    b_.AttachPeer(&a_, prop, loss, 8);
  }

  Simulation sim_;
  Nic a_{&sim_, "a", {}};
  Nic b_{&sim_, "b", {}};
};

TEST_F(NicTest, SerializationTimeMatchesLineRate) {
  // 1518B frame + 24B overhead at 10 Gbit/s = 1233.6 ns.
  const SimTime t = a_.SerializationTime(1518);
  EXPECT_NEAR(static_cast<double>(t), 1233.6 * kNanosecond, 2 * kNanosecond);
}

TEST_F(NicTest, FrameArrivesAfterDmaSerializationAndPropagation) {
  Attach(10 * kMicrosecond);
  a_.Transmit(Frame(1000));
  sim_.Run();
  EXPECT_EQ(b_.rx_pending(), 1u);
  // dma(0.8us) + serialize(~0.86us) + prop(10us) + dma(0.8us) ≈ 12.4us.
  EXPECT_NEAR(static_cast<double>(sim_.Now()), 12.4 * kMicrosecond, 0.3 * kMicrosecond);
}

TEST_F(NicTest, BackToBackFramesPipelinedAtLineRate) {
  Attach();
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(a_.Transmit(Frame(1458)));  // 1518B frames
  }
  sim_.Run();
  EXPECT_EQ(b_.stats().rx_packets, static_cast<uint64_t>(n));
  // Wire occupancy dominates: n * 1233.6ns plus constant latencies.
  const double expect_ns = n * 1233.6;
  EXPECT_NEAR(static_cast<double>(sim_.Now()) / kNanosecond, expect_ns, 8000.0);
}

TEST_F(NicTest, TxRingRejectsWhenFull) {
  Nic::Params params;
  params.tx_ring_slots = 4;
  Nic small(&sim_, "small", params);
  small.AttachPeer(&b_, kMicrosecond, 0.0, 1);
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    accepted += small.Transmit(Frame(1458)) ? 1 : 0;
  }
  // One frame may already be in flight; ring holds 4 more.
  EXPECT_LE(accepted, 6);
  EXPECT_GT(small.stats().tx_ring_rejects, 0u);
  sim_.Run();
}

TEST_F(NicTest, RxRingDropsWhenFull) {
  Nic::Params params;
  params.rx_ring_slots = 8;
  Nic tiny(&sim_, "tiny", params);
  a_.AttachPeer(&tiny, kMicrosecond, 0.0, 1);
  for (int i = 0; i < 32; ++i) {
    a_.Transmit(Frame(100));
  }
  sim_.Run();  // nobody drains tiny's ring
  EXPECT_EQ(tiny.rx_pending(), 8u);
  EXPECT_EQ(tiny.stats().rx_ring_drops, 24u);
}

TEST_F(NicTest, RxNotifyFiresOnEmptyToNonEmpty) {
  Attach();
  int notifies = 0;
  b_.SetRxNotify([&] { ++notifies; });
  a_.Transmit(Frame(100));
  a_.Transmit(Frame(100));
  sim_.Run();
  EXPECT_EQ(notifies, 1);  // second frame arrived while ring non-empty
  // Drain and send again: notify re-arms.
  while (b_.PollRx()) {
  }
  a_.Transmit(Frame(100));
  sim_.Run();
  EXPECT_EQ(notifies, 2);
}

TEST_F(NicTest, LossDropsSomeFramesDeterministically) {
  Attach(kMicrosecond, 0.3);
  for (int i = 0; i < 1000; ++i) {
    a_.Transmit(Frame(100));
  }
  sim_.Run();
  EXPECT_GT(a_.stats().link_loss_drops, 200u);
  EXPECT_LT(a_.stats().link_loss_drops, 400u);
  EXPECT_EQ(b_.stats().rx_packets + a_.stats().link_loss_drops, 1000u);
}

TEST_F(NicTest, PollRxReturnsFramesInOrder) {
  Attach();
  auto p1 = Frame(100);
  auto p2 = Frame(200);
  const uint64_t id1 = p1->id;
  const uint64_t id2 = p2->id;
  a_.Transmit(p1);
  a_.Transmit(p2);
  sim_.Run();
  EXPECT_EQ(b_.PollRx()->id, id1);
  EXPECT_EQ(b_.PollRx()->id, id2);
  EXPECT_EQ(b_.PollRx(), nullptr);
}

TEST_F(NicTest, ByteCountersTrackFrameSizes) {
  Attach();
  a_.Transmit(Frame(1000));
  sim_.Run();
  const uint32_t frame_bytes = kEthHeaderBytes + kIpv4HeaderBytes + kTcpHeaderBytes + 1000;
  EXPECT_EQ(a_.stats().tx_bytes, frame_bytes);
  EXPECT_EQ(b_.stats().rx_bytes, frame_bytes);
}

}  // namespace
}  // namespace newtos
