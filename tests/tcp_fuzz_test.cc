// TCP property fuzzing: random loss, reordering, and duplication must never
// break exactly-once in-order delivery or teardown convergence.
//
// Each seed drives an adversarial wire that, per segment, may drop it,
// duplicate it, or delay it by a random extra interval (reordering). The
// invariants checked per run:
//   1. every submitted byte is delivered exactly once (counts match),
//   2. both endpoints converge to CLOSED after mutual CloseSend,
//   3. no counter goes pathological (retransmits bounded by segments sent).

#include <gtest/gtest.h>

#include <memory>

#include "src/net/tcp.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"
#include "src/sim/timer_wheel.h"

namespace newtos {
namespace {

struct FuzzConfig {
  uint64_t seed = 0;
  double drop = 0.05;
  double dup = 0.03;
  double delay = 0.10;   // probability of extra delay (reordering)
  uint64_t bytes = 200 * 1024;
  bool sack = false;
};

class AdversarialPair {
 public:
  explicit AdversarialPair(const FuzzConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {
    const FlowKey key{Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 40000, 80};
    TcpParams params;
    params.sack = cfg.sack;
    TcpConnection::Callbacks ca;
    ca.output = [this](PacketPtr p) { Wire(std::move(p), /*to_server=*/true); };
    client_ = std::make_unique<TcpConnection>(&sim_, &wheel_, key, params, std::move(ca));
    TcpConnection::Callbacks cb;
    cb.output = [this](PacketPtr p) { Wire(std::move(p), /*to_server=*/false); };
    server_ = std::make_unique<TcpConnection>(&sim_, &wheel_, key.Reversed(), params, std::move(cb));
    server_->Listen();
  }

  void Wire(PacketPtr p, bool to_server) {
    if (rng_.Bernoulli(cfg_.drop)) {
      return;
    }
    DeliverAfter(p, to_server, BaseDelay());
    if (rng_.Bernoulli(cfg_.dup)) {
      DeliverAfter(p, to_server, BaseDelay() + 20 * kMicrosecond);
    }
  }

  SimTime BaseDelay() {
    SimTime d = 30 * kMicrosecond;
    if (rng_.Bernoulli(cfg_.delay)) {
      d += static_cast<SimTime>(rng_.UniformInt(1, 200)) * kMicrosecond;
    }
    return d;
  }

  void DeliverAfter(const PacketPtr& p, bool to_server, SimTime delay) {
    sim_.Schedule(delay, [this, p, to_server] {
      (to_server ? server_ : client_)->OnSegment(*p);
    });
  }

  Simulation sim_;
  TimerWheel wheel_{&sim_};  // before the connections: they cancel into it on destruction
  FuzzConfig cfg_;
  Rng rng_;
  std::unique_ptr<TcpConnection> client_;
  std::unique_ptr<TcpConnection> server_;
};

class TcpFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TcpFuzz, ExactDeliveryAndCleanTeardown) {
  FuzzConfig cfg;
  cfg.seed = GetParam();
  AdversarialPair pair(cfg);

  pair.client_->Connect();
  pair.sim_.RunFor(2 * kSecond);  // handshake may retry under loss
  ASSERT_EQ(pair.client_->state(), TcpState::kEstablished) << "seed=" << cfg.seed;

  pair.client_->Send(cfg.bytes);
  pair.server_->Send(cfg.bytes / 4);  // bidirectional traffic
  pair.sim_.RunFor(60 * kSecond);

  // Invariant 1: exactly-once delivery, both directions.
  EXPECT_EQ(pair.server_->stats().bytes_received, cfg.bytes) << "seed=" << cfg.seed;
  EXPECT_EQ(pair.client_->stats().bytes_acked, cfg.bytes) << "seed=" << cfg.seed;
  EXPECT_EQ(pair.client_->stats().bytes_received, cfg.bytes / 4) << "seed=" << cfg.seed;

  // Invariant 3: sane counters.
  EXPECT_LE(pair.client_->stats().retransmits, pair.client_->stats().segs_sent);

  // Invariant 2: mutual close converges (TIME_WAIT included).
  pair.client_->CloseSend();
  pair.server_->CloseSend();
  pair.sim_.RunFor(120 * kSecond);
  EXPECT_EQ(pair.client_->state(), TcpState::kClosed) << "seed=" << cfg.seed;
  EXPECT_EQ(pair.server_->state(), TcpState::kClosed) << "seed=" << cfg.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
                                           17, 18, 19, 20));

// Heavier adversary: 15% loss, 10% duplication, aggressive reordering.
class TcpFuzzHeavy : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TcpFuzzHeavy, SurvivesHostileNetwork) {
  FuzzConfig cfg;
  cfg.seed = GetParam();
  cfg.drop = 0.15;
  cfg.dup = 0.10;
  cfg.delay = 0.30;
  cfg.bytes = 50 * 1024;
  AdversarialPair pair(cfg);

  pair.client_->Connect();
  pair.sim_.RunFor(10 * kSecond);
  ASSERT_EQ(pair.client_->state(), TcpState::kEstablished) << "seed=" << cfg.seed;
  pair.client_->Send(cfg.bytes);
  pair.sim_.RunFor(120 * kSecond);
  EXPECT_EQ(pair.server_->stats().bytes_received, cfg.bytes) << "seed=" << cfg.seed;
  EXPECT_GT(pair.client_->stats().retransmits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpFuzzHeavy, ::testing::Values(101, 102, 103, 104, 105, 106));

// The same invariants must hold with SACK enabled (its scoreboard must
// never convince the sender to skip a byte the receiver lacks).
class TcpFuzzSack : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TcpFuzzSack, ExactDeliveryWithSelectiveAcks) {
  FuzzConfig cfg;
  cfg.seed = GetParam();
  cfg.sack = true;
  cfg.drop = 0.08;
  cfg.dup = 0.05;
  cfg.delay = 0.20;
  AdversarialPair pair(cfg);

  pair.client_->Connect();
  pair.sim_.RunFor(5 * kSecond);
  ASSERT_EQ(pair.client_->state(), TcpState::kEstablished) << "seed=" << cfg.seed;
  pair.client_->Send(cfg.bytes);
  pair.server_->Send(cfg.bytes / 4);
  pair.sim_.RunFor(120 * kSecond);

  EXPECT_EQ(pair.server_->stats().bytes_received, cfg.bytes) << "seed=" << cfg.seed;
  EXPECT_EQ(pair.client_->stats().bytes_acked, cfg.bytes) << "seed=" << cfg.seed;
  EXPECT_EQ(pair.client_->stats().bytes_received, cfg.bytes / 4) << "seed=" << cfg.seed;

  pair.client_->CloseSend();
  pair.server_->CloseSend();
  pair.sim_.RunFor(120 * kSecond);
  EXPECT_EQ(pair.client_->state(), TcpState::kClosed) << "seed=" << cfg.seed;
  EXPECT_EQ(pair.server_->state(), TcpState::kClosed) << "seed=" << cfg.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpFuzzSack,
                         ::testing::Values(201, 202, 203, 204, 205, 206, 207, 208, 209, 210, 211,
                                           212));

}  // namespace
}  // namespace newtos
