#include "src/net/checksum.h"

#include <gtest/gtest.h>

#include <vector>

namespace newtos {
namespace {

TEST(Checksum, KnownVectorRfc1071) {
  // Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
  const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(Checksum(data, sizeof(data)), 0x220d);
}

TEST(Checksum, ZeroBufferChecksumIsAllOnes) {
  const std::vector<uint8_t> zeros(20, 0);
  EXPECT_EQ(Checksum(zeros.data(), zeros.size()), 0xffff);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const uint8_t odd[] = {0x12, 0x34, 0x56};
  const uint8_t even[] = {0x12, 0x34, 0x56, 0x00};
  EXPECT_EQ(Checksum(odd, 3), Checksum(even, 4));
}

TEST(Checksum, InsertedChecksumValidates) {
  std::vector<uint8_t> buf = {0x45, 0x00, 0x00, 0x28, 0x12, 0x34, 0x40, 0x00,
                              0x40, 0x06, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x01,
                              0x0a, 0x00, 0x00, 0x02};
  const uint16_t sum = Checksum(buf.data(), buf.size());
  buf[10] = static_cast<uint8_t>(sum >> 8);
  buf[11] = static_cast<uint8_t>(sum & 0xff);
  EXPECT_TRUE(ChecksumValid(buf.data(), buf.size()));
}

TEST(Checksum, CorruptionDetected) {
  std::vector<uint8_t> buf(40);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<uint8_t>(i * 7 + 1);
  }
  const uint16_t sum = Checksum(buf.data(), buf.size());
  buf.push_back(static_cast<uint8_t>(sum >> 8));
  buf.push_back(static_cast<uint8_t>(sum & 0xff));
  ASSERT_TRUE(ChecksumValid(buf.data(), buf.size()));
  buf[5] ^= 0x01;  // flip one bit
  EXPECT_FALSE(ChecksumValid(buf.data(), buf.size()));
}

TEST(Checksum, PartialSumsCompose) {
  std::vector<uint8_t> buf(64);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<uint8_t>(i);
  }
  // Whole-buffer checksum equals composing two even-sized partial sums.
  uint32_t sum = ChecksumPartial(buf.data(), 32);
  sum = ChecksumPartial(buf.data() + 32, 32, sum);
  EXPECT_EQ(ChecksumFinish(sum), Checksum(buf.data(), buf.size()));
}

TEST(Checksum, FinishFoldsCarries) {
  EXPECT_EQ(ChecksumFinish(0), 0xffff);
  EXPECT_EQ(ChecksumFinish(0xffff), 0x0000);
  EXPECT_EQ(ChecksumFinish(0x1ffff), ChecksumFinish(0x10000 + 0xffff));
}

}  // namespace
}  // namespace newtos
