// Cross-cutting system properties: the qualitative shapes the paper's
// claims rest on, asserted as invariants rather than point values.

#include <gtest/gtest.h>

#include "src/core/steering.h"
#include "src/core/testbed.h"
#include "src/net/packet.h"
#include "src/sim/random.h"
#include "src/workload/iperf.h"

namespace newtos {
namespace {

double GoodputAt(FreqKhz stack_freq) {
  Testbed tb;
  DedicatedSlowPlan(*tb.stack(), stack_freq, 3'600'000 * kKhz).Apply(tb.machine());
  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();
  tb.sim().RunFor(150 * kMillisecond);
  sink.window().Reset(tb.sim().Now());
  tb.sim().RunFor(150 * kMillisecond);
  return sink.window().GbitsPerSec(tb.sim().Now());
}

TEST(Shapes, GoodputNeverImprovesWhenTheStackSlows) {
  // The Fig. 2 monotonicity property, on three well-separated points.
  const double fast = GoodputAt(3'600'000 * kKhz);
  const double mid = GoodputAt(1'600'000 * kKhz);
  const double slow = GoodputAt(800'000 * kKhz);
  EXPECT_GE(fast * 1.005, mid);  // tiny tolerance for measurement windows
  EXPECT_GT(mid, slow);
  EXPECT_GT(slow, 1.0);
}

TEST(Shapes, PackagePowerFallsMonotonicallyWithStackFrequency) {
  auto watts = [](FreqKhz f) {
    Testbed tb;
    DedicatedSlowPlan(*tb.stack(), f, 3'600'000 * kKhz).Apply(tb.machine());
    tb.sim().RunFor(10 * kMillisecond);
    return tb.machine().PackageWatts();
  };
  double prev = 1e9;
  for (FreqKhz f : {3'600'000 * kKhz, 2'800'000 * kKhz, 2'000'000 * kKhz, 1'200'000 * kKhz,
                    600'000 * kKhz}) {
    const double w = watts(f);
    EXPECT_LT(w, prev) << ToGhz(f);
    prev = w;
  }
}

TEST(Properties, SymmetricFlowHashIsDirectionInvariant) {
  Rng rng(4242);
  for (int i = 0; i < 10000; ++i) {
    FlowKey k;
    k.src_ip = static_cast<Ipv4Addr>(rng.Next());
    k.dst_ip = static_cast<Ipv4Addr>(rng.Next());
    k.src_port = static_cast<uint16_t>(rng.Next());
    k.dst_port = static_cast<uint16_t>(rng.Next());
    ASSERT_EQ(SymmetricFlowHash(k), SymmetricFlowHash(k.Reversed()));
  }
}

TEST(Properties, SymmetricFlowHashSpreadsFlows) {
  // Sharding needs reasonable balance: for many ephemeral-port flows to one
  // service, every shard of 3 should get a fair share.
  int counts[3] = {0, 0, 0};
  for (uint16_t port = 49152; port < 49152 + 3000; ++port) {
    const FlowKey k{Ipv4(10, 0, 0, 2), Ipv4(10, 0, 0, 1), port, 80};
    counts[SymmetricFlowHash(k) % 3]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);   // perfect would be 1000
    EXPECT_LT(c, 1200);
  }
}

TEST(Properties, PackageEnergyIsSumOfCoresPlusUncore) {
  Testbed tb;
  tb.sim().RunFor(100 * kMillisecond);
  const SimTime now = tb.sim().Now();
  double cores = 0.0;
  for (int i = 0; i < tb.machine().num_cores(); ++i) {
    cores += tb.machine().core(i)->JoulesAt(now);
  }
  const double uncore = tb.machine().power_model().uncore_watts() * ToSeconds(now);
  EXPECT_NEAR(tb.machine().PackageJoulesAt(now), cores + uncore, 1e-6);
}

TEST(Properties, StackConservesTcpSegments) {
  // Every segment the driver hands up either reaches the TCP server or is
  // dropped at an accounted place (PF drop, channel overflow, non-local).
  Testbed tb;
  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();
  tb.sim().RunFor(100 * kMillisecond);

  const uint64_t forwarded_up = tb.stack()->ip()->rx_forwarded();
  const uint64_t pf_out = tb.stack()->pf()->accepted() + tb.stack()->pf()->dropped();
  const uint64_t pf_in_queue = tb.stack()->pf()->rx_in()->size();
  EXPECT_LE(pf_out + pf_in_queue, forwarded_up);
  EXPECT_GE(pf_out + pf_in_queue + 64, forwarded_up);  // slack: in-flight batch
}

TEST(Properties, TwoIdenticalTestbedsStayInLockstep) {
  auto fingerprint = [] {
    Testbed tb;
    SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
    IperfSender::Params sp;
    sp.dst = tb.peer_addr();
    IperfSender sender(api, sp);
    IperfPeerSink sink(&tb.peer());
    sender.Start();
    tb.sim().RunFor(123 * kMillisecond);
    return std::make_tuple(tb.sim().events_processed(), sink.total_bytes(),
                           tb.machine().nic()->stats().tx_packets,
                           tb.machine().core(3)->busy_cycles());
  };
  EXPECT_EQ(fingerprint(), fingerprint());
}

TEST(Steering, WimpyStackPlanBindsToLittleCores) {
  TestbedOptions opt;
  opt.machine = BigLittleParams(2, 3);
  Testbed tb(opt);
  WimpyStackPlan(*tb.stack(), 1'200'000 * kKhz, 3'600'000 * kKhz).Apply(tb.machine());
  EXPECT_EQ(tb.stack()->driver()->core()->id(), 2);
  EXPECT_EQ(tb.stack()->tcp()->core()->id(), 4);
  EXPECT_TRUE(tb.machine().IsHeterogeneousCore(2));
  EXPECT_FALSE(tb.machine().IsHeterogeneousCore(0));
  // Little cores snapped to their own table's 1.2 GHz point.
  EXPECT_EQ(tb.machine().core(4)->frequency(), 1'200'000 * kKhz);
  // Big cores cannot be asked for little-core voltages and vice versa: the
  // big core at 3.6 GHz draws more than the little one at 1.2.
  EXPECT_GT(tb.machine().core(0)->CurrentWatts(), tb.machine().core(4)->CurrentWatts());
}

}  // namespace
}  // namespace newtos
