// Monolithic-baseline tests: same workloads, one core for app + stack.

#include "src/os/monolithic_stack.h"

#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "src/workload/httpd.h"
#include "src/workload/iperf.h"

namespace newtos {
namespace {

TestbedOptions MonoOptions() {
  TestbedOptions opt;
  opt.monolithic = true;
  opt.machine.num_cores = 5;  // only core 0 is used by the SUT
  return opt;
}

TEST(Monolithic, IperfTransmitWorks) {
  Testbed tb(MonoOptions());
  ASSERT_NE(tb.mono(), nullptr);
  ASSERT_EQ(tb.stack(), nullptr);
  SocketApi* api = tb.mono()->CreateApp();

  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();

  tb.sim().RunFor(300 * kMillisecond);
  EXPECT_GT(sink.total_bytes(), 100u * 1024u * 1024u);  // multi-Gbit/s class
}

TEST(Monolithic, HttpServes) {
  Testbed tb(MonoOptions());
  SocketApi* api = tb.mono()->CreateApp();
  HttpParams hp;
  hp.concurrency = 4;
  HttpServerApp server(api, hp);
  server.Start();
  tb.sim().RunFor(1 * kMillisecond);
  HttpPeerClient client(&tb.peer(), tb.sut_addr(), hp);
  client.Start();
  tb.sim().RunFor(200 * kMillisecond);
  EXPECT_GT(client.responses(), 500u);
}

TEST(Monolithic, AppComputeContendsWithStackWork) {
  // With heavy per-request compute, the shared core must serve fewer
  // requests than the multiserver layout where the app core is dedicated.
  HttpParams hp;
  hp.concurrency = 16;
  hp.server_compute_cycles = 200'000;  // heavy dynamic content

  uint64_t mono_responses = 0;
  {
    Testbed tb(MonoOptions());
    SocketApi* api = tb.mono()->CreateApp();
    HttpServerApp server(api, hp);
    server.Start();
    tb.sim().RunFor(1 * kMillisecond);
    HttpPeerClient client(&tb.peer(), tb.sut_addr(), hp);
    client.Start();
    tb.sim().RunFor(400 * kMillisecond);
    mono_responses = client.responses();
  }

  uint64_t multi_responses = 0;
  {
    Testbed tb;  // multiserver default
    SocketApi* api = tb.stack()->CreateApp("httpd", tb.machine().core(0));
    HttpServerApp server(api, hp);
    server.Start();
    tb.sim().RunFor(1 * kMillisecond);
    HttpPeerClient client(&tb.peer(), tb.sut_addr(), hp);
    client.Start();
    tb.sim().RunFor(400 * kMillisecond);
    multi_responses = client.responses();
  }

  EXPECT_GT(mono_responses, 0u);
  EXPECT_GT(multi_responses, mono_responses)
      << "dedicating the app core must win under compute-heavy load";
}

TEST(Monolithic, MultipleAppsShareTheCore) {
  Testbed tb(MonoOptions());
  SocketApi* a1 = tb.mono()->CreateApp();
  SocketApi* a2 = tb.mono()->CreateApp();

  HttpParams hp1;
  hp1.port = 80;
  hp1.concurrency = 2;
  HttpParams hp2;
  hp2.port = 8080;
  hp2.concurrency = 2;
  HttpServerApp s1(a1, hp1);
  HttpServerApp s2(a2, hp2);
  s1.Start();
  s2.Start();
  tb.sim().RunFor(1 * kMillisecond);
  HttpPeerClient c1(&tb.peer(), tb.sut_addr(), hp1);
  HttpPeerClient c2(&tb.peer(), tb.sut_addr(), hp2);
  c1.Start();
  c2.Start();
  tb.sim().RunFor(200 * kMillisecond);
  EXPECT_GT(c1.responses(), 100u);
  EXPECT_GT(c2.responses(), 100u);
}

TEST(Monolithic, PacketCountersAdvance) {
  Testbed tb(MonoOptions());
  SocketApi* api = tb.mono()->CreateApp();
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();
  tb.sim().RunFor(50 * kMillisecond);
  EXPECT_GT(tb.mono()->packets_in(), 0u);
  EXPECT_GT(tb.mono()->packets_out(), 0u);
}

}  // namespace
}  // namespace newtos
