#include "src/net/filter.h"

#include <gtest/gtest.h>

namespace newtos {
namespace {

Packet TcpPacket(Ipv4Addr src, Ipv4Addr dst, uint16_t sport, uint16_t dport) {
  Packet p;
  p.ip.proto = IpProto::kTcp;
  p.ip.src = src;
  p.ip.dst = dst;
  p.tcp.src_port = sport;
  p.tcp.dst_port = dport;
  return p;
}

TEST(Filter, EmptyChainUsesDefault) {
  PacketFilter accept(FilterAction::kAccept);
  PacketFilter drop(FilterAction::kDrop);
  const Packet p = TcpPacket(1, 2, 3, 4);
  EXPECT_EQ(accept.Evaluate(p).action, FilterAction::kAccept);
  EXPECT_EQ(drop.Evaluate(p).action, FilterAction::kDrop);
  EXPECT_EQ(accept.Evaluate(p).rules_evaluated, 0);
}

TEST(Filter, FirstMatchWins) {
  PacketFilter pf(FilterAction::kAccept);
  FilterRule drop_all;  // matches everything
  drop_all.action = FilterAction::kDrop;
  FilterRule accept_all;
  accept_all.action = FilterAction::kAccept;
  pf.Append(drop_all);
  pf.Append(accept_all);
  const auto v = pf.Evaluate(TcpPacket(1, 2, 3, 4));
  EXPECT_EQ(v.action, FilterAction::kDrop);
  EXPECT_EQ(v.rules_evaluated, 1);
}

TEST(Filter, ProtoWildcardAndSpecific) {
  FilterRule tcp_only;
  tcp_only.proto = IpProto::kTcp;
  Packet tcp = TcpPacket(1, 2, 3, 4);
  Packet udp;
  udp.ip.proto = IpProto::kUdp;
  EXPECT_TRUE(tcp_only.Matches(tcp));
  EXPECT_FALSE(tcp_only.Matches(udp));
  FilterRule any;
  EXPECT_TRUE(any.Matches(tcp));
  EXPECT_TRUE(any.Matches(udp));
}

TEST(Filter, MaskedAddressMatch) {
  FilterRule subnet;
  subnet.src_addr = Ipv4(10, 1, 0, 0);
  subnet.src_mask = 0xffff0000;  // /16
  EXPECT_TRUE(subnet.Matches(TcpPacket(Ipv4(10, 1, 99, 7), 0, 1, 2)));
  EXPECT_FALSE(subnet.Matches(TcpPacket(Ipv4(10, 2, 0, 1), 0, 1, 2)));
}

TEST(Filter, PortMatch) {
  FilterRule http;
  http.dst_port = 80;
  EXPECT_TRUE(http.Matches(TcpPacket(1, 2, 5555, 80)));
  EXPECT_FALSE(http.Matches(TcpPacket(1, 2, 5555, 443)));
}

TEST(Filter, UdpPortsUsedForUdpPackets) {
  FilterRule r;
  r.dst_port = 53;
  Packet u;
  u.ip.proto = IpProto::kUdp;
  u.udp.dst_port = 53;
  u.tcp.dst_port = 9999;  // must be ignored for UDP
  EXPECT_TRUE(r.Matches(u));
}

TEST(Filter, RulesEvaluatedCountsWalkLength) {
  PacketFilter pf = MakeSyntheticFilter(10);
  EXPECT_EQ(pf.size(), 10u);
  const auto v = pf.Evaluate(TcpPacket(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 1000, 80));
  EXPECT_EQ(v.action, FilterAction::kAccept);
  EXPECT_EQ(v.rules_evaluated, 10);  // walks past 9 non-matching to accept-all
  ASSERT_NE(v.rule, nullptr);
  EXPECT_EQ(v.rule->label, "accept-all");
}

TEST(Filter, CountersAccumulate) {
  PacketFilter pf(FilterAction::kAccept);
  FilterRule drop_port;
  drop_port.dst_port = 23;
  drop_port.action = FilterAction::kDrop;
  pf.Append(drop_port);
  pf.Evaluate(TcpPacket(1, 2, 3, 23));
  pf.Evaluate(TcpPacket(1, 2, 3, 80));
  pf.Evaluate(TcpPacket(1, 2, 3, 80));
  EXPECT_EQ(pf.dropped(), 1u);
  EXPECT_EQ(pf.accepted(), 2u);
}

TEST(Filter, SyntheticFilterZeroAndOneRule) {
  PacketFilter zero = MakeSyntheticFilter(0);
  EXPECT_EQ(zero.size(), 0u);
  PacketFilter one = MakeSyntheticFilter(1);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(one.Evaluate(TcpPacket(1, 2, 3, 4)).action, FilterAction::kAccept);
}

}  // namespace
}  // namespace newtos
