#include "src/net/udp.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/sim/simulation.h"

namespace newtos {
namespace {

class UdpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = std::make_unique<UdpHost>(&sim_, Ipv4(10, 0, 0, 1),
                                   [this](PacketPtr p) { Wire(std::move(p), b_.get()); });
    b_ = std::make_unique<UdpHost>(&sim_, Ipv4(10, 0, 0, 2),
                                   [this](PacketPtr p) { Wire(std::move(p), a_.get()); });
  }
  void Wire(PacketPtr p, UdpHost* dst) {
    sim_.Schedule(5 * kMicrosecond, [p = std::move(p), dst] { dst->OnPacket(p); });
  }

  Simulation sim_;
  std::unique_ptr<UdpHost> a_;
  std::unique_ptr<UdpHost> b_;
};

TEST_F(UdpTest, DatagramDeliveredToBoundPort) {
  int got = 0;
  uint32_t got_bytes = 0;
  ASSERT_TRUE(b_->Bind(53, [&](const PacketPtr& p) {
    ++got;
    got_bytes = p->payload_bytes;
  }));
  a_->Send(1111, b_->addr(), 53, 256);
  sim_.Run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(got_bytes, 256u);
  EXPECT_EQ(b_->delivered(), 1u);
}

TEST_F(UdpTest, UnboundPortDropsAndCounts) {
  a_->Send(1111, b_->addr(), 999, 100);
  sim_.Run();
  EXPECT_EQ(b_->delivered(), 0u);
  EXPECT_EQ(b_->dropped_unbound(), 1u);
}

TEST_F(UdpTest, DoubleBindRejected) {
  EXPECT_TRUE(b_->Bind(53, [](const PacketPtr&) {}));
  EXPECT_FALSE(b_->Bind(53, [](const PacketPtr&) {}));
}

TEST_F(UdpTest, UnbindStopsDelivery) {
  int got = 0;
  b_->Bind(53, [&](const PacketPtr&) { ++got; });
  a_->Send(1, b_->addr(), 53, 10);
  sim_.Run();
  b_->Unbind(53);
  a_->Send(1, b_->addr(), 53, 10);
  sim_.Run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(b_->dropped_unbound(), 1u);
}

TEST_F(UdpTest, HeaderFieldsFilledCorrectly) {
  // Observed at the receiver: the fields must also survive the wire.
  PacketPtr sent;
  b_->Bind(53, [&](const PacketPtr& p) { sent = p; });
  a_->Send(4242, b_->addr(), 53, 99, /*app_tag=*/77);
  sim_.Run();
  ASSERT_TRUE(sent);
  EXPECT_EQ(sent->ip.proto, IpProto::kUdp);
  EXPECT_EQ(sent->ip.src, a_->addr());
  EXPECT_EQ(sent->ip.dst, b_->addr());
  EXPECT_EQ(sent->udp.src_port, 4242);
  EXPECT_EQ(sent->udp.dst_port, 53);
  EXPECT_EQ(sent->payload_bytes, 99u);
  EXPECT_EQ(sent->app_tag, 77u);
}

TEST_F(UdpTest, WrongAddressIgnored) {
  b_->Bind(53, [](const PacketPtr&) { FAIL() << "must not deliver"; });
  // Craft a packet addressed elsewhere and hand it to b.
  PacketPtr p = MakePacket();
  p->ip.proto = IpProto::kUdp;
  p->ip.dst = Ipv4(99, 99, 99, 99);
  p->udp.dst_port = 53;
  b_->OnPacket(p);
  EXPECT_EQ(b_->dropped_unbound(), 1u);
}

TEST_F(UdpTest, BidirectionalEcho) {
  int echoes = 0;
  b_->Bind(7, [&](const PacketPtr& p) {
    b_->Send(7, p->ip.src, p->udp.src_port, p->payload_bytes);
  });
  a_->Bind(1234, [&](const PacketPtr&) { ++echoes; });
  for (int i = 0; i < 10; ++i) {
    a_->Send(1234, b_->addr(), 7, 64);
  }
  sim_.Run();
  EXPECT_EQ(echoes, 10);
}

}  // namespace
}  // namespace newtos
