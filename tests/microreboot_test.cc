// Crash/microreboot experiments: the reliability story survives slow cores.

#include "src/os/microreboot.h"

#include <gtest/gtest.h>

#include "src/core/steering.h"
#include "src/core/testbed.h"
#include "src/workload/iperf.h"

namespace newtos {
namespace {

struct RunningIperf {
  explicit RunningIperf(Testbed& tb)
      : api(tb.stack()->CreateApp("iperf", tb.machine().core(0))),
        sender(api,
               [&tb] {
                 IperfSender::Params p;
                 p.dst = tb.peer_addr();
                 return p;
               }()),
        sink(&tb.peer()) {
    sender.Start();
  }
  SocketApi* api;
  IperfSender sender;
  IperfPeerSink sink;
};

TEST(Microreboot, IpServerCrashRecoversTransparently) {
  Testbed tb;
  RunningIperf load(tb);
  tb.sim().RunFor(100 * kMillisecond);
  const uint64_t before = load.sink.total_bytes();
  ASSERT_GT(before, 0u);

  MicrorebootManager mgr(&tb.sim());
  mgr.InjectCrash(tb.stack()->ip(), tb.sim().Now() + 10 * kMillisecond,
                  tb.stack()->config().ip.restart_cycles);
  tb.sim().RunFor(2 * kSecond);

  EXPECT_TRUE(mgr.AllRecovered());
  EXPECT_FALSE(tb.stack()->ip()->crashed());
  // Traffic resumed after the incident: clearly more bytes flowed.
  EXPECT_GT(load.sink.total_bytes(), before + 50'000'000u);
}

TEST(Microreboot, DriverCrashRecovers) {
  Testbed tb;
  RunningIperf load(tb);
  tb.sim().RunFor(100 * kMillisecond);

  MicrorebootManager mgr(&tb.sim());
  mgr.InjectCrash(tb.stack()->driver(), tb.sim().Now() + kMillisecond,
                  tb.stack()->config().driver.restart_cycles);
  tb.sim().RunFor(2 * kSecond);

  EXPECT_TRUE(mgr.AllRecovered());
  const auto& inc = mgr.incidents()[0];
  EXPECT_GT(inc.detected_at, inc.crashed_at);
  EXPECT_GT(inc.recovered_at, inc.detected_at);
}

TEST(Microreboot, TcpCrashWithoutCheckpointKillsConnections) {
  Testbed tb;
  RunningIperf load(tb);
  tb.sim().RunFor(100 * kMillisecond);
  ASSERT_EQ(tb.stack()->tcp()->host().connection_count(), 1u);

  MicrorebootManager mgr(&tb.sim());
  mgr.InjectCrash(tb.stack()->tcp(), tb.sim().Now() + kMillisecond,
                  tb.stack()->config().tcp.restart_cycles);
  tb.sim().RunFor(3 * kSecond);

  EXPECT_TRUE(mgr.AllRecovered());
  // Cold recovery: the connection table was lost.
  EXPECT_EQ(tb.stack()->tcp()->host().connection_count(), 0u);
}

TEST(Microreboot, TcpCrashWithCheckpointResumesTransfer) {
  Testbed tb;
  tb.stack()->tcp()->set_checkpointing(true);
  RunningIperf load(tb);
  tb.sim().RunFor(100 * kMillisecond);
  const uint64_t before = load.sink.total_bytes();

  MicrorebootManager mgr(&tb.sim());
  mgr.InjectCrash(tb.stack()->tcp(), tb.sim().Now() + kMillisecond,
                  tb.stack()->config().tcp.restart_cycles);
  tb.sim().RunFor(3 * kSecond);

  EXPECT_TRUE(mgr.AllRecovered());
  EXPECT_EQ(tb.stack()->tcp()->host().connection_count(), 1u);
  EXPECT_GT(load.sink.total_bytes(), before + 50'000'000u)
      << "the checkpointed connection must keep moving data after recovery";
}

TEST(Microreboot, SlowerCoreRebootsProportionallySlower) {
  auto recovery_time = [](FreqKhz stack_freq) {
    Testbed tb;
    SteeringPlan plan = DedicatedSlowPlan(*tb.stack(), stack_freq, 3'600'000 * kKhz);
    plan.Apply(tb.machine());
    RunningIperf load(tb);
    tb.sim().RunFor(50 * kMillisecond);
    MicrorebootManager mgr(&tb.sim());
    mgr.InjectCrash(tb.stack()->ip(), tb.sim().Now() + kMillisecond,
                    tb.stack()->config().ip.restart_cycles);
    tb.sim().RunFor(2 * kSecond);
    EXPECT_TRUE(mgr.AllRecovered());
    return mgr.incidents()[0].RecoveryTime();
  };
  const SimTime fast = recovery_time(3'600'000 * kKhz);
  const SimTime slow = recovery_time(1'200'000 * kKhz);
  EXPECT_GT(slow, fast);
  // Reboot cycles scale 3x, but detection latency is constant, so total
  // recovery grows by less than 3x — the paper's point that slow cores do
  // not meaningfully hurt recovery.
  EXPECT_LT(static_cast<double>(slow), 3.0 * static_cast<double>(fast));
}

TEST(Microreboot, IncidentsRecordTimeline) {
  Testbed tb;
  MicrorebootManager mgr(&tb.sim());
  mgr.set_detection_latency(500 * kMicrosecond);
  mgr.InjectCrash(tb.stack()->udp(), 10 * kMillisecond, 1'000'000);
  tb.sim().RunFor(kSecond);
  ASSERT_EQ(mgr.incidents().size(), 1u);
  const auto& inc = mgr.incidents()[0];
  EXPECT_EQ(inc.server, "udp");
  EXPECT_EQ(inc.crashed_at, 10 * kMillisecond);
  EXPECT_EQ(inc.detected_at, inc.crashed_at + 500 * kMicrosecond);
  EXPECT_GT(inc.recovered_at, inc.detected_at);
}

TEST(Microreboot, RepeatedCrashesAllRecover) {
  Testbed tb;
  RunningIperf load(tb);
  MicrorebootManager mgr(&tb.sim());
  for (int i = 1; i <= 3; ++i) {
    mgr.InjectCrash(tb.stack()->ip(), i * 200 * kMillisecond,
                    tb.stack()->config().ip.restart_cycles);
  }
  tb.sim().RunFor(2 * kSecond);
  EXPECT_TRUE(mgr.AllRecovered());
  EXPECT_EQ(mgr.incidents().size(), 3u);
}

}  // namespace
}  // namespace newtos
