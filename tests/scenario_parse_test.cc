// Parser ergonomics: every malformed directive must fail with file:line:col,
// the offending token, and a usable one-line hint — and garbage input must
// never crash or parse silently.

#include <gtest/gtest.h>

#include <string>

#include "src/scenario/parser.h"

namespace newtos::scenario {
namespace {

// Parses `body` appended to a valid scenario header, expecting failure, and
// returns the error for inspection.
ParseError FailAt(const std::string& body) {
  Script s;
  ParseError err;
  const bool ok = ParseScript("scenario t\n" + body + "\n", "t.nsc", &s, &err);
  EXPECT_FALSE(ok) << "accepted: " << body;
  EXPECT_FALSE(err.message.empty());
  return err;
}

Script ParseOk(const std::string& body) {
  Script s;
  ParseError err;
  const bool ok = ParseScript("scenario t\n" + body + "\n", "t.nsc", &s, &err);
  EXPECT_TRUE(ok) << err.Format();
  return s;
}

TEST(ScenarioParse, FullScriptCompiles) {
  Script s;
  ParseError err;
  const std::string text =
      "# comment\n"
      "scenario wan_all   # trailing comment\n"
      "seed 42\n"
      "freq 3.6GHz 1.2GHz\n"
      "app_freq 900MHz\n"
      "warmup 30ms\n"
      "run_for 250ms\n"
      "measure_at 90ms\n"
      "recovery_bound 100ms\n"
      "burst 256KiB\n"
      "connections 4\n"
      "tcp sack off\n"
      "tcp tlp on\n"
      "tcp rto_min 10ms\n"
      "link rtt 40ms\n"
      "link loss 0.01 seed 7\n"
      "link rate 10Gbps\n"
      "link queue 256\n"
      "link reorder 0.02 500us\n"
      "watchdog on interval 2ms misses 3\n"
      "checkpoint on\n"
      "trace on\n"
      "inject chan_drop ip prob 0.01\n"
      "at 100ms until 200ms inject chan_dup tcp prob 0.02\n"
      "at 90ms inject crash ip\n"
      "at 150ms set freq 1.2GHz\n"
      "expect injected\n"
      "expect detected\n"
      "expect recovered within 100ms\n"
      "expect integrity\n"
      "expect progress\n"
      "expect delivered >= 64KiB by 200ms\n"
      "expect digest 0x9ae16a3b2f90404f\n"
      "expect counter retransmits > 0\n"
      "expect counter chan_drops in 1..5000\n";
  ASSERT_TRUE(ParseScript(text, "wan_all.nsc", &s, &err)) << err.Format();

  EXPECT_EQ(s.name, "wan_all");
  EXPECT_EQ(s.seed, 42u);
  ASSERT_EQ(s.freqs.size(), 2u);
  EXPECT_EQ(s.freqs[0], 3'600'000 * kKhz);
  EXPECT_EQ(s.freqs[1], 1'200'000 * kKhz);
  EXPECT_EQ(s.app_freq, 900'000 * kKhz);
  EXPECT_EQ(s.warmup, 30 * kMillisecond);
  EXPECT_EQ(s.run_for, 250 * kMillisecond);
  EXPECT_EQ(s.measure_at, 90 * kMillisecond);
  EXPECT_EQ(s.burst_bytes, 256u * 1024u);
  EXPECT_EQ(s.connections, 4);
  EXPECT_EQ(s.tcp_sack, std::optional<bool>(false));
  EXPECT_EQ(s.tcp_tlp, std::optional<bool>(true));
  EXPECT_EQ(s.tcp_rto_min, std::optional<SimTime>(10 * kMillisecond));
  EXPECT_EQ(s.link.rtt, 40 * kMillisecond);
  EXPECT_DOUBLE_EQ(s.link.loss, 0.01);
  EXPECT_EQ(s.link.loss_seed, 7u);
  EXPECT_DOUBLE_EQ(s.link.rate_gbps, 10.0);
  EXPECT_EQ(s.link.queue_slots, 256u);
  EXPECT_DOUBLE_EQ(s.link.reorder_prob, 0.02);
  EXPECT_EQ(s.link.reorder_delay, 500 * kMicrosecond);
  EXPECT_TRUE(s.watchdog);
  EXPECT_EQ(s.watchdog_params.heartbeat_interval, 2 * kMillisecond);
  EXPECT_EQ(s.watchdog_params.miss_threshold, 3);
  EXPECT_TRUE(s.checkpoint);
  EXPECT_TRUE(s.trace);

  ASSERT_EQ(s.injects.size(), 3u);
  EXPECT_EQ(s.injects[0].cls, FaultClass::kChanDrop);
  EXPECT_EQ(s.injects[0].target, "ip");
  EXPECT_DOUBLE_EQ(s.injects[0].probability, 0.01);
  EXPECT_EQ(s.injects[0].from, 0);
  EXPECT_EQ(s.injects[0].until, 0);
  EXPECT_EQ(s.injects[1].cls, FaultClass::kChanDuplicate);
  EXPECT_EQ(s.injects[1].from, 100 * kMillisecond);
  EXPECT_EQ(s.injects[1].until, 200 * kMillisecond);
  EXPECT_EQ(s.injects[2].cls, FaultClass::kServerCrash);
  EXPECT_EQ(s.injects[2].at, 90 * kMillisecond);

  ASSERT_EQ(s.freq_steps.size(), 1u);
  EXPECT_EQ(s.freq_steps[0].at, 150 * kMillisecond);
  EXPECT_EQ(s.freq_steps[0].freq, 1'200'000 * kKhz);

  ASSERT_EQ(s.expects.size(), 9u);
  EXPECT_EQ(s.expects[2].kind, ExpectCheck::Kind::kRecoveredWithin);
  EXPECT_EQ(s.expects[2].bound, 100 * kMillisecond);
  EXPECT_EQ(s.expects[5].kind, ExpectCheck::Kind::kDelivered);
  EXPECT_EQ(s.expects[5].value, 64u * 1024u);
  EXPECT_EQ(s.expects[5].deadline, 200 * kMillisecond);
  EXPECT_EQ(s.expects[6].kind, ExpectCheck::Kind::kDigest);
  EXPECT_EQ(s.expects[6].value, 0x9ae16a3b2f90404fULL);
  EXPECT_EQ(s.expects[7].kind, ExpectCheck::Kind::kCounter);
  EXPECT_EQ(s.expects[7].op, ExpectCheck::Op::kGt);
  EXPECT_EQ(s.expects[8].op, ExpectCheck::Op::kIn);
  EXPECT_EQ(s.expects[8].value, 1u);
  EXPECT_EQ(s.expects[8].high, 5000u);
  // Every expect remembers its source line for failure reporting.
  EXPECT_EQ(s.expects[0].line, 27);
}

TEST(ScenarioParse, DefaultsApplyWhenUnset) {
  const Script s = ParseOk("run_for 10ms");
  EXPECT_EQ(s.seed, scenario_defaults::kSeed);
  ASSERT_EQ(s.freqs.size(), 1u);
  EXPECT_EQ(s.freqs[0], scenario_defaults::kStackFreq);
  EXPECT_EQ(s.warmup, scenario_defaults::kWarmup);
  EXPECT_EQ(s.burst_bytes, scenario_defaults::kBurstBytes);
  EXPECT_FALSE(s.watchdog);
  EXPECT_FALSE(s.trace);
}

// --- structural errors ------------------------------------------------------

TEST(ScenarioParse, EmptyScriptFails) {
  Script s;
  ParseError err;
  EXPECT_FALSE(ParseScript("", "", &s, &err));
  EXPECT_NE(err.message.find("no `scenario` directive"), std::string::npos);
  // Memory-parsed scripts report "<memory>" instead of a path.
  EXPECT_NE(err.Format().find("<memory>"), std::string::npos);
}

TEST(ScenarioParse, ScenarioMustComeFirst) {
  Script s;
  ParseError err;
  EXPECT_FALSE(ParseScript("seed 1\nscenario late\n", "t.nsc", &s, &err));
  EXPECT_EQ(err.line, 1);
  EXPECT_NE(err.message.find("first directive"), std::string::npos);
}

TEST(ScenarioParse, DuplicateScenarioFails) {
  const ParseError err = FailAt("scenario again");
  EXPECT_EQ(err.line, 2);
  EXPECT_NE(err.message.find("duplicate"), std::string::npos);
}

TEST(ScenarioParse, UnknownDirectiveNamesItAndListsAll) {
  const ParseError err = FailAt("frobnicate 3");
  EXPECT_EQ(err.line, 2);
  EXPECT_EQ(err.col, 1);
  EXPECT_EQ(err.token, "frobnicate");
  EXPECT_NE(err.hint.find("directives:"), std::string::npos);
}

TEST(ScenarioParse, ErrorFormatHasFileLineColTokenAndHint) {
  Script s;
  ParseError err;
  ASSERT_FALSE(ParseScript("scenario t\nwarmup banana\n", "path/x.nsc", &s, &err));
  EXPECT_EQ(err.file, "path/x.nsc");
  EXPECT_EQ(err.line, 2);
  EXPECT_EQ(err.col, 8);  // column of the bad value, not the directive
  EXPECT_EQ(err.token, "banana");
  const std::string f = err.Format();
  EXPECT_NE(f.find("path/x.nsc:2:8: error:"), std::string::npos);
  EXPECT_NE(f.find("near 'banana'"), std::string::npos);
  EXPECT_NE(f.find("hint:"), std::string::npos);
}

TEST(ScenarioParse, TrailingTokensRejected) {
  const ParseError err = FailAt("seed 1 extra");
  EXPECT_EQ(err.token, "extra");
  EXPECT_NE(err.message.find("trailing"), std::string::npos);
}

TEST(ScenarioParse, MissingArgumentPointsPastLineEnd) {
  const ParseError err = FailAt("warmup");
  EXPECT_EQ(err.line, 2);
  EXPECT_EQ(err.token, "");
  EXPECT_EQ(err.col, 7);  // one past "warmup"
  EXPECT_NE(err.message.find("missing"), std::string::npos);
}

// --- value errors -----------------------------------------------------------

TEST(ScenarioParse, BadValuesFailWithHints) {
  EXPECT_NE(FailAt("seed -3").message.find("non-negative integer"), std::string::npos);
  EXPECT_NE(FailAt("freq fast").message.find("frequency"), std::string::npos);
  EXPECT_NE(FailAt("freq 0GHz").message.find("frequency"), std::string::npos);
  EXPECT_NE(FailAt("run_for 5miles").message.find("duration"), std::string::npos);
  EXPECT_NE(FailAt("burst 5lbs").message.find("byte size"), std::string::npos);
  EXPECT_NE(FailAt("connections 2000000001").message.find("implausibly large"),
            std::string::npos);
  EXPECT_NE(FailAt("checkpoint maybe").message.find("'on' or 'off'"), std::string::npos);
  EXPECT_NE(FailAt("watchdog on interval never").message.find("duration"), std::string::npos);
  EXPECT_NE(FailAt("watchdog on bark").message.find("unknown watchdog option"),
            std::string::npos);
}

TEST(ScenarioParse, TopologyErrors) {
  EXPECT_NE(FailAt("topology mesh").message.find("unknown topology"), std::string::npos);
  EXPECT_NE(FailAt("topology incast").message.find("expected 'clients'"), std::string::npos);
  EXPECT_NE(FailAt("topology incast clients 0").message.find("at least one client"),
            std::string::npos);
}

TEST(ScenarioParse, TcpAndLinkKnobErrors) {
  EXPECT_NE(FailAt("tcp nagle on").message.find("unknown tcp knob"), std::string::npos);
  EXPECT_NE(FailAt("tcp rto_min big").message.find("duration"), std::string::npos);
  EXPECT_NE(FailAt("link mtu 9000").message.find("unknown link knob"), std::string::npos);
  EXPECT_NE(FailAt("link loss 1.5").message.find("[0, 1]"), std::string::npos);
  EXPECT_NE(FailAt("link rate 10").message.find("10Gbps"), std::string::npos);
  EXPECT_NE(FailAt("link reorder 0.02").message.find("missing"), std::string::npos);
}

// --- inject errors ----------------------------------------------------------

TEST(ScenarioParse, InjectErrors) {
  EXPECT_NE(FailAt("inject meteor ip").message.find("unknown fault class"), std::string::npos);
  EXPECT_NE(FailAt("inject chan_drop").message.find("missing target"), std::string::npos);
  EXPECT_NE(FailAt("inject chan_drop ip").message.find("trial probability"), std::string::npos);
  EXPECT_NE(FailAt("inject chan_drop ip prob 2").message.find("[0, 1]"), std::string::npos);
  EXPECT_NE(FailAt("inject chan_drop ip prob 0.1 loudly").message.find("unknown inject option"),
            std::string::npos);
  // Wire faults take no target; a stray one reads as a bad option.
  EXPECT_NE(FailAt("inject wire_flip ip prob 0.1").message.find("unknown inject option"),
            std::string::npos);
  EXPECT_NE(FailAt("inject crash ip").message.find("trigger time"), std::string::npos);
  EXPECT_NE(FailAt("at 10ms until 20ms inject crash ip").message.find("one-shot"),
            std::string::npos);
}

TEST(ScenarioParse, AtDirectiveErrors) {
  EXPECT_NE(FailAt("at 0ms inject crash ip").message.find("positive"), std::string::npos);
  EXPECT_NE(FailAt("at 20ms until 10ms inject chan_drop ip prob 0.1")
                .message.find("`until` must come after"),
            std::string::npos);
  EXPECT_NE(FailAt("at 10ms until 20ms set freq 1.2GHz").message.find("point action"),
            std::string::npos);
  EXPECT_NE(FailAt("at 10ms dance").message.find("expected `inject` or `set`"),
            std::string::npos);
}

// --- expect errors ----------------------------------------------------------

TEST(ScenarioParse, ExpectErrors) {
  EXPECT_NE(FailAt("expect victory").message.find("unknown expectation"), std::string::npos);
  EXPECT_NE(FailAt("expect recovered").message.find("expected 'within'"), std::string::npos);
  EXPECT_NE(FailAt("expect delivered 5KB").message.find("expected '>='"), std::string::npos);
  EXPECT_NE(FailAt("expect digest zzz").message.find("hex digest"), std::string::npos);
  EXPECT_NE(FailAt("expect digest 0x12345678123456781").message.find("hex digest"),
            std::string::npos);
  EXPECT_NE(FailAt("expect counter bogons > 0").message.find("unknown counter"),
            std::string::npos);
  EXPECT_NE(FailAt("expect counter retransmits ~ 5").message.find("unknown comparison"),
            std::string::npos);
  EXPECT_NE(FailAt("expect counter retransmits in 9..3").message.find("lo <= hi"),
            std::string::npos);
  EXPECT_NE(FailAt("expect counter retransmits in banana").message.find("lo <= hi"),
            std::string::npos);
  EXPECT_NE(FailAt("expect integrity badly").message.find("trailing"), std::string::npos);
  // The unknown-counter hint enumerates the whole legal set.
  EXPECT_NE(FailAt("expect counter bogons > 0").hint.find("retransmits"), std::string::npos);
}

// --- cross-directive validation --------------------------------------------

TEST(ScenarioParse, ValidationErrors) {
  EXPECT_NE(FailAt("topology incast clients 4\ninject chan_drop ip prob 0.1")
                .message.find("p2p-only"),
            std::string::npos);
  EXPECT_NE(FailAt("topology incast clients 4\nwatchdog on").message.find("p2p-only"),
            std::string::npos);
  EXPECT_NE(FailAt("topology incast clients 4\ntrace on").message.find("p2p-only"),
            std::string::npos);
  EXPECT_NE(FailAt("expect detected").message.find("watchdog on"), std::string::npos);
  EXPECT_NE(FailAt("expect injected").message.find("without any `inject`"), std::string::npos);
  EXPECT_NE(FailAt("warmup 10ms\nrun_for 10ms\nexpect delivered >= 1 by 30ms")
                .message.find("past the end"),
            std::string::npos);
  EXPECT_NE(FailAt("warmup 10ms\nrun_for 10ms\nat 30ms inject crash ip")
                .message.find("past the end"),
            std::string::npos);
}

TEST(ScenarioParse, WatchdogExpectsAcceptedWhenWatchdogOn) {
  const Script s = ParseOk(
      "watchdog on\nat 10ms inject crash ip\nexpect detected\nexpect recovered within 50ms");
  EXPECT_EQ(s.expects.size(), 2u);
}

// --- garbage must neither crash nor pass ------------------------------------

TEST(ScenarioParse, FuzzGarbageNeverCrashesNeverAcceptsSilently) {
  // Deterministic xorshift so failures reproduce.
  uint64_t x = 0x243f6a8885a308d3ULL;
  auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 .#\t=<>!_-\nGHzmskKiB\x01\x7f\xff";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string text = trial % 2 == 0 ? "scenario fuzz\n" : "";
    const int len = static_cast<int>(next() % 160);
    for (int i = 0; i < len; ++i) {
      text += alphabet[next() % (sizeof(alphabet) - 1)];
    }
    Script s;
    ParseError err;
    const bool ok = ParseScript(text, "fuzz.nsc", &s, &err);
    if (!ok) {
      // Rejections must carry a located, formatted error.
      EXPECT_FALSE(err.message.empty());
      EXPECT_GE(err.line, 0);
      EXPECT_FALSE(err.Format().empty());
    } else {
      // Anything accepted must have parsed the mandatory header for real.
      EXPECT_FALSE(s.name.empty());
      EXPECT_FALSE(s.freqs.empty());
    }
  }
}

TEST(ScenarioParse, TruncatedDirectivePrefixesAllFail) {
  // Every prefix of a known-good line must be a clean diagnostic, not a crash
  // or a silent half-parse.
  const std::string good = "at 100ms until 200ms inject chan_dup tcp prob 0.02 delay 1ms";
  for (size_t cut = 1; cut < good.size(); ++cut) {
    const std::string prefix = good.substr(0, cut);
    Script s;
    ParseError err;
    const bool ok = ParseScript("scenario t\n" + prefix + "\n", "t.nsc", &s, &err);
    if (ok) {
      // A parseable prefix must have been a complete directive: the inject
      // compiled with its window and a probability, nothing half-read.
      ASSERT_EQ(s.injects.size(), 1u) << "half-parse of: " << prefix;
      EXPECT_EQ(s.injects[0].from, 100 * kMillisecond);
      EXPECT_EQ(s.injects[0].until, 200 * kMillisecond);
      EXPECT_GE(s.injects[0].probability, 0.0);
    } else {
      EXPECT_FALSE(err.message.empty()) << "silent failure on: " << prefix;
    }
  }
}

TEST(ScenarioParse, LoadScriptMissingFileFails) {
  Script s;
  ParseError err;
  EXPECT_FALSE(LoadScript("/nonexistent/nope.nsc", &s, &err));
  EXPECT_NE(err.message.find("cannot open"), std::string::npos);
}

TEST(ScenarioParse, LoadScriptDirMissingDirFails) {
  std::vector<Script> scripts;
  ParseError err;
  EXPECT_FALSE(LoadScriptDir("/nonexistent/dir", &scripts, &err));
  EXPECT_NE(err.message.find("cannot list"), std::string::npos);
}

}  // namespace
}  // namespace newtos::scenario
