// End-to-end integration: testbed machine + multiserver stack + peer host.

#include <gtest/gtest.h>

#include "src/core/steering.h"
#include "src/core/testbed.h"
#include "src/workload/httpd.h"
#include "src/workload/iperf.h"
#include "src/workload/udp_flood.h"

namespace newtos {
namespace {

TestbedOptions DefaultOptions() {
  TestbedOptions opt;
  opt.machine.num_cores = 5;
  return opt;
}

TEST(StackIntegration, IperfTransmitApproachesLineRate) {
  Testbed tb(DefaultOptions());
  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));

  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();

  tb.sim().RunFor(200 * kMillisecond);
  sink.window().Reset(tb.sim().Now());
  tb.sim().RunFor(300 * kMillisecond);

  const double gbps = sink.window().GbitsPerSec(tb.sim().Now());
  // 10 GbE payload goodput tops out near ~9.3 Gbit/s for 1448B MSS.
  EXPECT_GT(gbps, 8.0) << "measured " << gbps << " Gbit/s";
  EXPECT_LT(gbps, 10.0);
}

TEST(StackIntegration, IperfReceiveApproachesLineRate) {
  Testbed tb(DefaultOptions());
  SocketApi* api = tb.stack()->CreateApp("sink", tb.machine().core(0));
  IperfSutSink sink(api);
  sink.Start();
  tb.sim().RunFor(1 * kMillisecond);  // let the listen request land

  IperfPeerSender::Params pp;
  pp.sut = tb.sut_addr();
  IperfPeerSender sender(&tb.peer(), pp);
  sender.Start();

  tb.sim().RunFor(200 * kMillisecond);
  sink.window().Reset(tb.sim().Now());
  tb.sim().RunFor(300 * kMillisecond);

  const double gbps = sink.window().GbitsPerSec(tb.sim().Now());
  EXPECT_GT(gbps, 8.0) << "measured " << gbps << " Gbit/s";
}

TEST(StackIntegration, SlowStackCoresStillSustainLineRate) {
  // The paper's headline: scale the three system cores down to 2.4 GHz and
  // bulk throughput barely moves.
  Testbed tb(DefaultOptions());
  SteeringPlan plan = DedicatedSlowPlan(*tb.stack(), 2'400'000 * kKhz, 3'600'000 * kKhz);
  plan.Apply(tb.machine());

  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();

  tb.sim().RunFor(200 * kMillisecond);
  sink.window().Reset(tb.sim().Now());
  tb.sim().RunFor(300 * kMillisecond);
  EXPECT_GT(sink.window().GbitsPerSec(tb.sim().Now()), 8.0);
}

TEST(StackIntegration, VerySlowStackCoresBottleneckThroughput) {
  Testbed tb(DefaultOptions());
  SteeringPlan plan = DedicatedSlowPlan(*tb.stack(), 600'000 * kKhz, 3'600'000 * kKhz);
  plan.Apply(tb.machine());

  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();

  tb.sim().RunFor(200 * kMillisecond);
  sink.window().Reset(tb.sim().Now());
  tb.sim().RunFor(300 * kMillisecond);
  const double gbps = sink.window().GbitsPerSec(tb.sim().Now());
  EXPECT_LT(gbps, 8.0) << "a 0.6 GHz TCP core cannot keep 10 GbE full";
  EXPECT_GT(gbps, 0.5);
}

TEST(StackIntegration, HttpServesRequestsAndMeasuresLatency) {
  Testbed tb(DefaultOptions());
  SocketApi* api = tb.stack()->CreateApp("httpd", tb.machine().core(0));

  HttpParams hp;
  hp.concurrency = 8;
  HttpServerApp server(api, hp);
  server.Start();
  tb.sim().RunFor(1 * kMillisecond);

  HttpPeerClient client(&tb.peer(), tb.sut_addr(), hp);
  client.Start();

  tb.sim().RunFor(100 * kMillisecond);
  client.ResetWindow(tb.sim().Now());
  tb.sim().RunFor(400 * kMillisecond);

  EXPECT_GT(client.responses(), 1000u);
  EXPECT_GT(client.latency().count(), 0u);
  EXPECT_GE(client.latency().P99(), client.latency().P50());
  EXPECT_LT(client.latency().P50(), 5 * kMillisecond);
  EXPECT_EQ(server.open_connections(), hp.concurrency);
}

TEST(StackIntegration, UdpFloodIsDeliveredThroughTheStack) {
  Testbed tb(DefaultOptions());
  UdpSutSink sink;
  sink.BindDirect(tb.stack()->udp(), kUdpFloodPort);
  tb.sim().RunFor(1 * kMillisecond);

  UdpPeerFlood::Params fp;
  fp.sut = tb.sut_addr();
  fp.packets_per_sec = 50'000;
  UdpPeerFlood flood(&tb.peer(), fp);
  flood.Start();

  tb.sim().RunFor(200 * kMillisecond);
  flood.Stop();
  tb.sim().RunFor(50 * kMillisecond);

  EXPECT_GT(flood.sent(), 9000u);
  // Allow a little in-flight slack but essentially everything arrives.
  EXPECT_GE(sink.received(), flood.sent() * 99 / 100);
}

TEST(StackIntegration, PfDropRulesFilterTraffic) {
  TestbedOptions opt = DefaultOptions();
  opt.stack.use_pf = true;
  opt.stack.pf_rules = 8;
  Testbed tb(opt);

  // Replace the synthetic chain with one that drops all UDP.
  PacketFilter pf(FilterAction::kAccept);
  FilterRule drop_udp;
  drop_udp.proto = IpProto::kUdp;
  drop_udp.action = FilterAction::kDrop;
  pf.Append(drop_udp);
  tb.stack()->pf()->ReplaceFilter(std::move(pf));

  UdpSutSink sink;
  sink.BindDirect(tb.stack()->udp(), kUdpFloodPort);
  UdpPeerFlood::Params fp;
  fp.sut = tb.sut_addr();
  fp.packets_per_sec = 10'000;
  UdpPeerFlood flood(&tb.peer(), fp);
  flood.Start();

  tb.sim().RunFor(100 * kMillisecond);
  EXPECT_GT(tb.stack()->pf()->dropped(), 0u);
  EXPECT_EQ(sink.received(), 0u);
}

TEST(StackIntegration, SyscallGatewayPathWorks) {
  TestbedOptions opt = DefaultOptions();
  opt.stack.use_syscall_gateway = true;
  Testbed tb(opt);
  ASSERT_NE(tb.stack()->syscall(), nullptr);

  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();

  tb.sim().RunFor(300 * kMillisecond);
  EXPECT_GT(sink.total_bytes(), 0u);
  EXPECT_GT(tb.stack()->syscall()->forwarded(), 0u);
}

TEST(StackIntegration, MultipleConcurrentAppsShareTheStack) {
  Testbed tb(DefaultOptions());
  SocketApi* iperf_api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  SocketApi* http_api = tb.stack()->CreateApp("httpd", tb.machine().core(4));

  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(iperf_api, sp);
  IperfPeerSink sink(&tb.peer());
  HttpParams hp;
  hp.concurrency = 4;
  HttpServerApp http_server(http_api, hp);
  http_server.Start();
  sender.Start();
  tb.sim().RunFor(1 * kMillisecond);
  HttpPeerClient client(&tb.peer(), tb.sut_addr(), hp);
  client.Start();

  tb.sim().RunFor(300 * kMillisecond);
  EXPECT_GT(client.responses(), 100u);
  EXPECT_GT(sink.total_bytes(), 0u);
}

TEST(StackIntegration, DeterministicEndToEnd) {
  auto run = [] {
    Testbed tb(DefaultOptions());
    SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
    IperfSender::Params sp;
    sp.dst = tb.peer_addr();
    IperfSender sender(api, sp);
    IperfPeerSink sink(&tb.peer());
    sender.Start();
    tb.sim().RunFor(250 * kMillisecond);
    return std::make_tuple(sink.total_bytes(), tb.sim().events_processed(),
                           tb.stack()->tcp()->segments_out());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace newtos
