// Per-rule regression tests for newtos_lint. Each fixture file under
// tests/lint_fixtures/ contains exactly one violation of exactly one rule
// (plus near-miss look-alikes that must NOT fire); the clean fixture
// contains none. The fixtures are lint *inputs*, never compiled — they are
// read as text through LINT_FIXTURE_DIR, which CMake points at the source
// tree so the binary works from any build directory.

#include "tools/lint/lint.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace newtos::lint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

// Enables every rule for the fixture pseudo-path, like the checked-in
// lint.toml does for src/.
Config AllRulesConfig() {
  const char* kToml =
      "[rule.heap-new]\npaths = [\"fixtures/\"]\n"
      "[rule.heap-make]\npaths = [\"fixtures/\"]\n"
      "[rule.std-function]\npaths = [\"fixtures/\"]\n"
      "[rule.banned-deque]\npaths = [\"fixtures/\"]\n"
      "[rule.map-iteration]\npaths = [\"fixtures/\"]\n"
      "[rule.wall-clock]\npaths = [\"fixtures/\"]\n"
      "[rule.runtime-clock]\npaths = [\"fixtures/\"]\n"
      "[rule.nondet-source]\npaths = [\"fixtures/\"]\n"
      "[rule.ptr-key-order]\npaths = [\"fixtures/\"]\n"
      "[rule.server-handle]\npaths = [\"fixtures/\"]\n"
      "[rule.ring-pow2]\npaths = [\"fixtures/\"]\n"
      "[rule.fabric-shared-state]\npaths = [\"fixtures/\"]\n"
      "[rule.flow-timer]\npaths = [\"fixtures/\"]\n"
      "[rule.scenario-literals]\npaths = [\"fixtures/\"]\n"
      "[rule.blocking-push]\npaths = [\"fixtures/\"]\n";
  Config config;
  std::string error;
  EXPECT_TRUE(ParseConfig(kToml, &config, &error)) << error;
  return config;
}

std::vector<Diagnostic> LintFixture(const std::string& name, const Config& config) {
  std::vector<Diagnostic> diags;
  LintFileText("fixtures/" + name, ReadFixture(name), "", config, &diags);
  return diags;
}

struct RuleCase {
  const char* fixture;
  const char* rule;
};

class LintRule : public ::testing::TestWithParam<RuleCase> {};

// With every rule enabled, each fixture must produce exactly one diagnostic,
// and it must carry the expected rule id — proving both that the rule fires
// and that the fixture's look-alikes fool no other rule.
TEST_P(LintRule, FixtureFailsWithExpectedRuleOnly) {
  const RuleCase& c = GetParam();
  const std::vector<Diagnostic> diags = LintFixture(c.fixture, AllRulesConfig());
  ASSERT_EQ(diags.size(), 1u) << "fixture " << c.fixture;
  EXPECT_EQ(diags[0].rule, c.rule);
  EXPECT_FALSE(diags[0].waived);
  EXPECT_GT(diags[0].line, 0);
  EXPECT_EQ(diags[0].file, std::string("fixtures/") + c.fixture);
  EXPECT_FALSE(diags[0].message.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintRule,
    ::testing::Values(RuleCase{"heap_new.cc", "heap-new"},
                      RuleCase{"heap_make.cc", "heap-make"},
                      RuleCase{"std_function.cc", "std-function"},
                      RuleCase{"banned_deque.cc", "banned-deque"},
                      RuleCase{"map_iteration.cc", "map-iteration"},
                      RuleCase{"wall_clock.cc", "wall-clock"},
                      RuleCase{"runtime_clock.cc", "runtime-clock"},
                      RuleCase{"nondet_source.cc", "nondet-source"},
                      RuleCase{"ptr_key_order.cc", "ptr-key-order"},
                      RuleCase{"server_handle.h", "server-handle"},
                      RuleCase{"ring_pow2.cc", "ring-pow2"},
                      RuleCase{"fabric_static.cc", "fabric-shared-state"},
                      RuleCase{"flow_timer.cc", "flow-timer"},
                      RuleCase{"scenario_literals.cc", "scenario-literals"},
                      RuleCase{"blocking_push.cc", "blocking-push"}),
    [](const ::testing::TestParamInfo<RuleCase>& param) {
      std::string name = param.param.rule;
      for (char& ch : name) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return name;
    });

TEST(Lint, CleanFixtureHasNoDiagnostics) {
  const std::vector<Diagnostic> diags = LintFixture("clean.cc", AllRulesConfig());
  EXPECT_TRUE(diags.empty());
}

TEST(Lint, RuleScopingRestrictsByPathPrefix) {
  Config config;
  std::string error;
  ASSERT_TRUE(ParseConfig("[rule.heap-new]\npaths = [\"src/\"]\n", &config, &error)) << error;
  const std::string text = ReadFixture("heap_new.cc");

  std::vector<Diagnostic> in_scope;
  LintFileText("src/foo.cc", text, "", config, &in_scope);
  ASSERT_EQ(in_scope.size(), 1u);

  std::vector<Diagnostic> out_of_scope;
  LintFileText("bench/foo.cc", text, "", config, &out_of_scope);
  EXPECT_TRUE(out_of_scope.empty());
}

TEST(Lint, InlineWaiverMarksDiagnosticWaived) {
  Config config;
  std::string error;
  ASSERT_TRUE(ParseConfig("[rule.heap-new]\npaths = [\"\"]\n", &config, &error)) << error;
  const std::string text =
      "struct W {};\n"
      "W* Make() {\n"
      "  return new W();  // lint:allow(heap-new): fixture waiver\n"
      "}\n";
  std::vector<Diagnostic> diags;
  LintFileText("x.cc", text, "", config, &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(diags[0].waived);
  EXPECT_EQ(diags[0].waive_reason, "fixture waiver");
}

TEST(Lint, InlineWaiverOnLineAboveAlsoCovers) {
  Config config;
  std::string error;
  ASSERT_TRUE(ParseConfig("[rule.heap-new]\npaths = [\"\"]\n", &config, &error)) << error;
  const std::string text =
      "struct W {};\n"
      "// lint:allow(heap-new): declared the line above\n"
      "W* w = new W();\n";
  std::vector<Diagnostic> diags;
  LintFileText("x.cc", text, "", config, &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(diags[0].waived);
}

TEST(Lint, WaiverForOneRuleDoesNotCoverAnother) {
  Config config;
  std::string error;
  ASSERT_TRUE(ParseConfig("[rule.heap-new]\npaths = [\"\"]\n", &config, &error)) << error;
  const std::string text = "struct W {};\nW* w = new W();  // lint:allow(heap-make): wrong rule\n";
  std::vector<Diagnostic> diags;
  LintFileText("x.cc", text, "", config, &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_FALSE(diags[0].waived);
}

TEST(Lint, AllowlistEntryWaivesAndIsMarkedUsed) {
  Config config;
  std::string error;
  const char* kToml =
      "[rule.heap-new]\npaths = [\"fixtures/\"]\n"
      "[[allow]]\nrule = \"heap-new\"\npath = \"fixtures/heap_new.cc\"\n"
      "reason = \"fixture exercises the allowlist\"\n";
  ASSERT_TRUE(ParseConfig(kToml, &config, &error)) << error;
  const std::vector<Diagnostic> diags = LintFixture("heap_new.cc", config);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(diags[0].waived);
  EXPECT_EQ(diags[0].waive_reason, "fixture exercises the allowlist");
  ASSERT_EQ(config.allows.size(), 1u);
  EXPECT_TRUE(config.allows[0].used);
}

TEST(Lint, ConfigRejectsAllowWithoutReason) {
  Config config;
  std::string error;
  const char* kToml = "[[allow]]\nrule = \"heap-new\"\npath = \"src/foo.cc\"\n";
  EXPECT_FALSE(ParseConfig(kToml, &config, &error));
  EXPECT_NE(error.find("no reason"), std::string::npos) << error;
}

TEST(Lint, ConfigRejectsAllowWithoutPath) {
  Config config;
  std::string error;
  const char* kToml = "[[allow]]\nrule = \"heap-new\"\nreason = \"because\"\n";
  EXPECT_FALSE(ParseConfig(kToml, &config, &error));
}

TEST(Lint, ConfigRejectsUnknownTable) {
  Config config;
  std::string error;
  EXPECT_FALSE(ParseConfig("[mystery]\nkey = \"v\"\n", &config, &error));
  EXPECT_NE(error.find("unknown table"), std::string::npos) << error;
}

TEST(Lint, DisabledRuleNeverFires) {
  // A rule absent from the config is off even on matching text.
  Config config;  // empty: no scopes at all
  std::vector<Diagnostic> diags;
  LintFileText("fixtures/heap_new.cc", ReadFixture("heap_new.cc"), "", config, &diags);
  EXPECT_TRUE(diags.empty());
}

TEST(Lint, SiblingHeaderMapDeclarationIsCorrelated) {
  // map-iteration must see a member declared in the .h when linting the .cc.
  Config config;
  std::string error;
  ASSERT_TRUE(ParseConfig("[rule.map-iteration]\npaths = [\"\"]\n", &config, &error)) << error;
  const std::string header = "#include <map>\nstruct S {\n  std::map<int, int> members_;\n};\n";
  const std::string source =
      "void S::Walk() {\n"
      "  for (const auto& kv : members_) {\n"
      "    (void)kv;\n"
      "  }\n"
      "}\n";
  std::vector<Diagnostic> diags;
  LintFileText("x.cc", source, header, config, &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "map-iteration");
}

TEST(Lint, BannedWordInStringLiteralDoesNotFire) {
  Config config;
  std::string error;
  ASSERT_TRUE(ParseConfig("[rule.wall-clock]\npaths = [\"\"]\n", &config, &error)) << error;
  const std::string text = "const char* kDoc = \"steady_clock is banned here\";\n";
  std::vector<Diagnostic> diags;
  LintFileText("x.cc", text, "", config, &diags);
  EXPECT_TRUE(diags.empty());
}

TEST(Lint, CheckedInConfigParsesAndTreeIsCleanUnderIt) {
  // The repo's own lint.toml must stay parseable, and the real tree must lint
  // clean under it — the same gate CI runs, reachable from the test suite.
  Config config;
  std::string error;
  ASSERT_TRUE(LoadConfig(std::string(LINT_REPO_ROOT) + "/tools/lint/lint.toml", &config, &error))
      << error;
  std::vector<Diagnostic> diags;
  ASSERT_TRUE(LintTree(LINT_REPO_ROOT, config, &diags, &error)) << error;
  for (const Diagnostic& d : diags) {
    EXPECT_TRUE(d.waived) << d.file << ":" << d.line << " [" << d.rule << "] " << d.message;
  }
}

}  // namespace
}  // namespace newtos::lint
