// Testbed rig and TimeSeries sampler tests.

#include "src/core/testbed.h"

#include <gtest/gtest.h>

#include "src/metrics/timeseries.h"
#include "src/workload/iperf.h"

namespace newtos {
namespace {

TEST(Testbed, DefaultBuildsMultiserver) {
  Testbed tb;
  EXPECT_NE(tb.stack(), nullptr);
  EXPECT_EQ(tb.mono(), nullptr);
  EXPECT_EQ(tb.machine().num_cores(), 5);
  EXPECT_EQ(tb.sut_addr(), Ipv4(10, 0, 0, 1));
  EXPECT_EQ(tb.peer_addr(), Ipv4(10, 0, 0, 2));
}

TEST(Testbed, MonolithicOptionBuildsBaseline) {
  TestbedOptions opt;
  opt.monolithic = true;
  Testbed tb(opt);
  EXPECT_EQ(tb.stack(), nullptr);
  EXPECT_NE(tb.mono(), nullptr);
}

TEST(Testbed, WarmUpAdvancesClockAndResetsStats) {
  Testbed tb;
  tb.WarmUp(100 * kMillisecond);
  EXPECT_EQ(tb.sim().Now(), 100 * kMillisecond);
  EXPECT_NEAR(tb.machine().PackageJoulesAt(tb.sim().Now()), 0.0, 1e-9);
}

TEST(Testbed, LinkLossOptionDropsFrames) {
  TestbedOptions opt;
  opt.link_loss = 0.02;
  Testbed tb(opt);
  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();
  tb.sim().RunFor(200 * kMillisecond);
  EXPECT_GT(tb.machine().nic()->stats().link_loss_drops, 0u);
  EXPECT_GT(sink.total_bytes(), 0u);  // TCP recovers
}

TEST(Testbed, KeepTiesLifetimeToTestbed) {
  auto flag = std::make_shared<int>(7);
  std::weak_ptr<int> weak = flag;
  {
    Testbed tb;
    tb.Keep(std::move(flag));
    EXPECT_FALSE(weak.expired());
  }
  EXPECT_TRUE(weak.expired());
}

TEST(TimeSeries, SamplesAtFixedInterval) {
  Simulation sim;
  int counter = 0;
  TimeSeries ts(&sim, 10 * kMillisecond, [&] { return static_cast<double>(++counter); });
  ts.Start();
  sim.RunFor(55 * kMillisecond);
  ts.Stop();
  ASSERT_EQ(ts.points().size(), 5u);
  EXPECT_EQ(ts.points()[0].at, 10 * kMillisecond);
  EXPECT_EQ(ts.points()[4].at, 50 * kMillisecond);
  EXPECT_DOUBLE_EQ(ts.points()[4].value, 5.0);
}

TEST(TimeSeries, StopHaltsSampling) {
  Simulation sim;
  TimeSeries ts(&sim, kMillisecond, [] { return 1.0; });
  ts.Start();
  sim.RunFor(5 * kMillisecond);
  ts.Stop();
  const size_t n = ts.points().size();
  sim.RunFor(10 * kMillisecond);
  EXPECT_EQ(ts.points().size(), n);
}

TEST(TimeSeries, MaxOverPoints) {
  Simulation sim;
  double v = 0.0;
  TimeSeries ts(&sim, kMillisecond, [&] { return (v += 1.5); });
  EXPECT_DOUBLE_EQ(ts.Max(), 0.0);  // empty
  ts.Start();
  sim.RunFor(4 * kMillisecond);
  EXPECT_DOUBLE_EQ(ts.Max(), 6.0);
}

}  // namespace
}  // namespace newtos
