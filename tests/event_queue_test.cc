#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace newtos {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Push(30, [&] { order.push_back(3); });
  q.Push(10, [&] { order.push_back(1); });
  q.Push(20, [&] { order.push_back(2); });
  while (!q.Empty()) {
    q.Pop().second();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoTieBreakAtSameInstant) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(42, [&order, i] { order.push_back(i); });
  }
  while (!q.Empty()) {
    q.Pop().second();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.Push(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(h.Cancel());
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.Cancel());  // second cancel is a no-op
  EXPECT_TRUE(q.Empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelledEventsAreSkippedNotReturned) {
  EventQueue q;
  int fired = 0;
  EventHandle h1 = q.Push(10, [&] { ++fired; });
  q.Push(20, [&] { ++fired; });
  h1.Cancel();
  EXPECT_EQ(q.NextTime(), 20);
  q.Pop().second();
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, HandleReportsFiredState) {
  EventQueue q;
  EventHandle h = q.Push(5, [] {});
  EXPECT_TRUE(h.pending());
  q.Pop().second();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.Cancel());  // cannot cancel after firing
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.Cancel());
}

TEST(EventQueue, NextTimeReflectsEarliestLiveEvent) {
  EventQueue q;
  q.Push(100, [] {});
  EventHandle early = q.Push(50, [] {});
  EXPECT_EQ(q.NextTime(), 50);
  early.Cancel();
  EXPECT_EQ(q.NextTime(), 100);
}

TEST(EventQueue, PushedCountsEverything) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) {
    q.Push(i, [] {});
  }
  EXPECT_EQ(q.pushed(), 5u);
}

TEST(EventQueue, StressManyEventsStayOrdered) {
  EventQueue q;
  // Pseudo-random times, then verify non-decreasing pop order.
  uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 10000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    q.Push(static_cast<SimTime>(x % 100000), [] {});
  }
  SimTime prev = -1;
  while (!q.Empty()) {
    auto [t, fn] = q.Pop();
    EXPECT_GE(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace newtos
