// Tests for the packet recycling pool: recycle correctness (blocks reused,
// contents re-initialized, ids still unique) and occupancy accounting.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/net/packet.h"
#include "src/net/packet_pool.h"

namespace newtos {
namespace {

TEST(PacketPool, SteadyChurnRecyclesInsteadOfAllocating) {
  PacketPool pool;
  {
    PacketPtr warm = pool.Make();  // grows the pool to one block
  }
  const PacketPool::Stats warm = pool.stats();
  EXPECT_EQ(warm.fresh_allocations, 1u);
  EXPECT_EQ(warm.outstanding, 0u);

  for (int i = 0; i < 1000; ++i) {
    PacketPtr p = pool.Make();
  }
  const PacketPool::Stats s = pool.stats();
  EXPECT_EQ(s.fresh_allocations, 1u) << "steady churn must not hit the system heap";
  EXPECT_EQ(s.recycled, 1000u);
  EXPECT_EQ(s.outstanding, 0u);
}

TEST(PacketPool, RecycledPacketsAreFreshlyInitialized) {
  PacketPool pool;
  uint64_t first_id = 0;
  {
    PacketPtr p = pool.Make();
    first_id = p->id;
    p->payload_bytes = 1460;
    p->tcp.seq = 77777;
    p->ip.ttl = 3;
    p->app_tag = 42;
  }
  PacketPtr q = pool.Make();
  // Same storage, but a brand-new Packet: default-constructed fields and a
  // fresh id.
  EXPECT_EQ(q->payload_bytes, 0u);
  EXPECT_EQ(q->tcp.seq, 0u);
  EXPECT_EQ(q->ip.ttl, 64);
  EXPECT_EQ(q->app_tag, 0u);
  EXPECT_EQ(q->id, first_id + 1);
}

TEST(PacketPool, IdsStayUniqueAcrossRecycling) {
  PacketPool pool;
  std::set<uint64_t> ids;
  for (int round = 0; round < 10; ++round) {
    std::vector<PacketPtr> batch;
    for (int i = 0; i < 20; ++i) {
      batch.push_back(pool.Make());
      EXPECT_TRUE(ids.insert(batch.back()->id).second) << "duplicate packet id";
    }
  }
  EXPECT_EQ(ids.size(), 200u);
}

TEST(PacketPool, HighWaterTracksMaxSimultaneousPackets) {
  PacketPool pool;
  {
    std::vector<PacketPtr> batch;
    for (int i = 0; i < 32; ++i) {
      batch.push_back(pool.Make());
    }
    EXPECT_EQ(pool.stats().outstanding, 32u);
    EXPECT_EQ(pool.stats().high_water, 32u);
  }
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_EQ(pool.stats().high_water, 32u);  // sticky

  // The pool retains all 32 blocks; a second burst of 32 is all-recycled.
  std::vector<PacketPtr> again;
  for (int i = 0; i < 32; ++i) {
    again.push_back(pool.Make());
  }
  const PacketPool::Stats s = pool.stats();
  EXPECT_EQ(s.fresh_allocations, 32u);
  EXPECT_EQ(s.recycled, 32u);
  EXPECT_EQ(s.high_water, 32u);
}

TEST(PacketPool, ReservePrefillsWithoutConsumingIdsOrStats) {
  PacketPool pool;
  PacketPtr probe = pool.Make();
  const uint64_t id_before = probe->id;
  probe.reset();

  pool.Reserve(64);
  EXPECT_GE(pool.free_blocks(), 64u);
  const PacketPool::Stats s = pool.stats();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.high_water, 1u) << "Reserve must not count as live occupancy";

  PacketPtr next = pool.Make();
  EXPECT_EQ(next->id, id_before + 1) << "Reserve must not consume packet ids";

  // 64 reserved blocks serve 64 simultaneous packets with no fresh allocs.
  const uint64_t fresh_before = pool.stats().fresh_allocations;
  std::vector<PacketPtr> batch;
  for (int i = 0; i < 63; ++i) {
    batch.push_back(pool.Make());
  }
  EXPECT_EQ(pool.stats().fresh_allocations, fresh_before);
}

TEST(PacketPool, DefaultPoolBacksMakePacket) {
  const PacketPool::Stats before = PacketPool::Default().stats();
  {
    PacketPtr p = MakePacket();
    EXPECT_GT(p->id, 0u);
    EXPECT_EQ(PacketPool::Default().stats().outstanding, before.outstanding + 1);
  }
  EXPECT_EQ(PacketPool::Default().stats().outstanding, before.outstanding);
}

}  // namespace
}  // namespace newtos
