// SifGovernor closed-loop tests: the controller walks idle system cores
// down and converts the headroom into application turbo.

#include "src/core/sif_governor.h"

#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "src/workload/iperf.h"

namespace newtos {
namespace {

TEST(SifGovernor, IdleSystemCoresWalkDownToFloor) {
  TestbedOptions opt;
  opt.machine.chip_power_budget_watts = 40.0;
  Testbed tb(opt);
  std::vector<Core*> sys{tb.machine().core(1), tb.machine().core(2), tb.machine().core(3)};
  std::vector<Core*> app{tb.machine().core(0)};
  SifGovernor gov(&tb.sim(), &tb.machine(), sys, app, {});
  gov.Start();
  tb.sim().RunFor(100 * kMillisecond);  // no traffic at all
  gov.Stop();

  for (Core* c : sys) {
    EXPECT_EQ(c->frequency(), c->table().back().freq) << c->name();
  }
  // The freed budget boosted the app core beyond base clock.
  EXPECT_GT(app[0]->frequency(), 3'600'000 * kKhz);
}

TEST(SifGovernor, LoadedCoresStepBackUp) {
  TestbedOptions opt;
  opt.machine.chip_power_budget_watts = 60.0;
  Testbed tb(opt);
  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());

  std::vector<Core*> sys{tb.machine().core(1), tb.machine().core(2), tb.machine().core(3)};
  std::vector<Core*> app{tb.machine().core(0)};
  SifGovernor gov(&tb.sim(), &tb.machine(), sys, app, {});

  // Start from the floor, then offer full line-rate load.
  for (Core* c : sys) {
    c->SetFrequency(c->table().back().freq);
  }
  gov.Start();
  sender.Start();
  tb.sim().RunFor(300 * kMillisecond);
  gov.Stop();

  // The TCP core (core 3) must have climbed well above the 600 MHz floor to
  // carry the load, and throughput must have recovered to near line rate.
  EXPECT_GT(tb.machine().core(3)->frequency(), 1'200'000 * kKhz);
  sink.window().Reset(tb.sim().Now());
  tb.sim().RunFor(100 * kMillisecond);
  EXPECT_GT(sink.window().GbitsPerSec(tb.sim().Now()), 7.0);
}

TEST(SifGovernor, HistoryRecordsSamples) {
  Testbed tb;
  std::vector<Core*> sys{tb.machine().core(1)};
  std::vector<Core*> app{tb.machine().core(0)};
  SifParams params;
  params.period = 5 * kMillisecond;
  SifGovernor gov(&tb.sim(), &tb.machine(), sys, app, params);
  gov.Start();
  tb.sim().RunFor(52 * kMillisecond);
  gov.Stop();
  // Initial rebalance + ~10 ticks.
  EXPECT_GE(gov.history().size(), 10u);
  for (const auto& s : gov.history()) {
    EXPECT_EQ(s.system_freq.size(), 1u);
    EXPECT_GT(s.provisioned_watts, 0.0);
  }
}

TEST(SifGovernor, StopHaltsTicking) {
  Testbed tb;
  SifGovernor gov(&tb.sim(), &tb.machine(), {tb.machine().core(1)}, {tb.machine().core(0)}, {});
  gov.Start();
  tb.sim().RunFor(10 * kMillisecond);
  gov.Stop();
  const size_t n = gov.history().size();
  tb.sim().RunFor(50 * kMillisecond);
  EXPECT_EQ(gov.history().size(), n);
}

TEST(SifGovernor, RespectsExplicitBudget) {
  TestbedOptions opt;
  opt.machine.chip_power_budget_watts = 200.0;  // machine says generous
  Testbed tb(opt);
  SifParams params;
  params.budget_watts = 30.0;  // governor told otherwise
  SifGovernor gov(&tb.sim(), &tb.machine(),
                  {tb.machine().core(1), tb.machine().core(2), tb.machine().core(3)},
                  {tb.machine().core(0)}, params);
  gov.Start();
  tb.sim().RunFor(50 * kMillisecond);
  gov.Stop();
  EXPECT_LE(gov.history().back().provisioned_watts, 30.0 + 1e-9);
}

}  // namespace
}  // namespace newtos
