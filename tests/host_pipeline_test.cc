// Real-thread pipeline tests (the userspace affinity proxy).
//
// Kept small: this container may have a single CPU, so the threads time-slice
// rather than run in parallel. Correctness (no loss, no reorder) must hold
// either way — that is precisely what the lock-free rings guarantee.

#include "src/host/pipeline.h"

#include <gtest/gtest.h>

#include "src/host/affinity.h"

namespace newtos {
namespace {

TEST(Affinity, CpuCountPositive) { EXPECT_GE(AvailableCpuCount(), 1); }

TEST(Affinity, PinWrapsAroundAvailableCpus) {
  // Pinning to a large index wraps mod the CPU count and succeeds.
  EXPECT_TRUE(PinThisThreadToCpu(1000));
  EXPECT_TRUE(PinThisThreadToCpu(0));
}

TEST(Pipeline, AllMessagesSurviveOneStage) {
  PipelineParams p;
  p.stages = 1;
  p.messages = 20'000;
  const PipelineResult r = RunPipeline(p);
  EXPECT_EQ(r.messages, 20'000u);
  EXPECT_GT(r.msgs_per_sec, 0.0);
}

TEST(Pipeline, AllMessagesSurviveThreeStages) {
  PipelineParams p;
  p.stages = 3;
  p.messages = 20'000;
  const PipelineResult r = RunPipeline(p);
  EXPECT_EQ(r.messages, 20'000u);
}

TEST(Pipeline, ChecksumIndependentOfRingCapacity) {
  // The token fold must not depend on scheduling or capacity: same inputs,
  // same checksum (stage work of 0 keeps tokens unmodified).
  PipelineParams small;
  small.stages = 2;
  small.messages = 5'000;
  small.ring_capacity = 8;
  PipelineParams large = small;
  large.ring_capacity = 4096;
  EXPECT_EQ(RunPipeline(small).checksum, RunPipeline(large).checksum);
}

TEST(Pipeline, ZeroStagesDegeneratesToProducerConsumer) {
  PipelineParams p;
  p.stages = 0;
  p.messages = 10'000;
  const PipelineResult r = RunPipeline(p);
  EXPECT_EQ(r.messages, 10'000u);
  // Untouched tokens: checksum is the arithmetic series sum.
  EXPECT_EQ(r.checksum, 10'000ull * 9'999ull / 2);
}

TEST(Pipeline, PinningDoesNotChangeResults) {
  PipelineParams p;
  p.stages = 2;
  p.messages = 5'000;
  p.pin_threads = true;
  const PipelineResult r = RunPipeline(p);
  EXPECT_EQ(r.messages, 5'000u);
}

TEST(Pipeline, PerStageWorkSlowsThroughput) {
  PipelineParams fast;
  fast.stages = 1;
  fast.messages = 5'000;
  PipelineParams slow = fast;
  slow.work_per_stage = 2'000;
  const double f = RunPipeline(fast).msgs_per_sec;
  const double s = RunPipeline(slow).msgs_per_sec;
  EXPECT_GT(f, 0.0);
  EXPECT_GT(s, 0.0);
  // Heavily loaded stages cannot be faster (allow wide scheduling noise).
  EXPECT_LT(s, f * 1.5);
}

}  // namespace
}  // namespace newtos
