// Parallel-lane equivalence: the repo's core claim for the fabric subsystem
// is that lane partitioning is a pure performance knob. A 1-lane run (the
// determinism oracle: no threads, no barriers) and an N-lane run of the
// same scenario must produce bit-identical stream digests, counters and
// derived figure rows. These tests hold both incast rigs to that, pin the
// oracle against checked-in goldens, and exercise the LaneEngine windowing
// machinery directly.
//
// The suite also runs under TSan in CI (see .github/workflows/ci.yml): the
// multi-lane path must be clean under the race detector with the channel
// checkers enabled.

#include "src/fabric/lane.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/fabric/incast.h"
#include "src/fabric/switch.h"
#include "src/sim/random.h"

namespace newtos {
namespace {

// --- LaneEngine mechanics -------------------------------------------------

TEST(LaneEngineTest, SingleLaneRunsWindowedOnCallerThread) {
  LaneEngine engine(1);
  engine.SetLookahead(10 * kMicrosecond);
  uint64_t ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    engine.lane(0).sim().Schedule(1 * kMicrosecond, [&] { tick(); });
  };
  engine.lane(0).sim().Schedule(0, [&] { tick(); });
  engine.RunFor(1 * kMillisecond);
  EXPECT_EQ(engine.Now(), 1 * kMillisecond);
  // Fires at t = 0, 1us, ..., 1ms inclusive (RunUntil runs events <= until).
  EXPECT_EQ(ticks, 1001u);
}

TEST(LaneEngineTest, AllLanesReachTheBarrierClock) {
  LaneEngine engine(4);
  engine.SetLookahead(5 * kMicrosecond);
  struct Ticker {
    Simulation* sim = nullptr;
    uint64_t count = 0;
    void Fire() {
      ++count;
      sim->Schedule(2 * kMicrosecond, [this] { Fire(); });
    }
  };
  std::vector<std::unique_ptr<Ticker>> tickers;
  for (int i = 0; i < 4; ++i) {
    tickers.push_back(std::make_unique<Ticker>());
    tickers.back()->sim = &engine.lane(i).sim();
    Ticker* t = tickers.back().get();
    t->sim->Schedule(0, [t] { t->Fire(); });
  }
  engine.RunFor(1 * kMillisecond);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(engine.lane(i).sim().Now(), 1 * kMillisecond);
    EXPECT_EQ(tickers[static_cast<size_t>(i)]->count, 501u) << "lane " << i;
  }
  EXPECT_EQ(engine.Now(), 1 * kMillisecond);
  // Perfectly balanced load: every lane carries ~1/4 of the events.
  EXPECT_NEAR(engine.MaxLaneShare(), 0.25, 0.01);
}

TEST(LaneEngineTest, BarrierFlushRunsOncePerWindow) {
  LaneEngine engine(2);
  engine.SetLookahead(10 * kMicrosecond);
  uint64_t flushes = 0;
  engine.SetBarrierFlush([&] { ++flushes; });
  engine.RunFor(1 * kMillisecond);
  EXPECT_EQ(flushes, 100u);
  engine.RunFor(500 * kMicrosecond);
  EXPECT_EQ(flushes, 150u);
}

// --- UDP incast equivalence ----------------------------------------------

UdpIncastOptions UdpOptions(int lanes) {
  UdpIncastOptions o;
  o.topo.n_clients = 8;
  o.topo.lanes = lanes;
  o.topo.seed = 1234;
  o.topo.fabric = IncastFabricDefaults();
  o.payload_bytes = 1024;
  o.pps_per_client = 200'000.0;  // 8 clients ~= 1.4x the SUT egress port
  o.poisson = true;
  return o;
}

struct UdpRun {
  uint64_t digest = 0;
  uint64_t delivered = 0;
  uint64_t sent = 0;
  uint64_t egress_drops = 0;
  uint64_t routed = 0;
};

UdpRun RunUdp(int lanes) {
  UdpIncastBed bed(UdpOptions(lanes));
  bed.Start();
  bed.RunFor(30 * kMillisecond);
  UdpRun r;
  r.digest = bed.Digest();
  r.delivered = bed.delivered();
  r.sent = bed.sent();
  r.egress_drops = bed.fabric().port_stats(0).egress_drops;
  r.routed = bed.fabric().stats().routed_frames;
  return r;
}

TEST(LaneEquivalence, UdpIncastIdenticalAcrossLaneCounts) {
  const UdpRun oracle = RunUdp(1);
  ASSERT_GT(oracle.delivered, 0u);
  ASSERT_GT(oracle.egress_drops, 0u) << "scenario must actually incast";
  for (int lanes : {2, 4}) {
    const UdpRun run = RunUdp(lanes);
    EXPECT_EQ(run.digest, oracle.digest) << lanes << " lanes";
    EXPECT_EQ(run.delivered, oracle.delivered) << lanes << " lanes";
    EXPECT_EQ(run.sent, oracle.sent) << lanes << " lanes";
    EXPECT_EQ(run.egress_drops, oracle.egress_drops) << lanes << " lanes";
    EXPECT_EQ(run.routed, oracle.routed) << lanes << " lanes";
  }
}

// Golden pinned from the 1-lane oracle; see file comment in
// determinism_test.cc for the update policy.
constexpr uint64_t kGoldenUdpDigest = 15093716963679013214ULL;
constexpr uint64_t kGoldenUdpDelivered = 34392;

TEST(LaneEquivalence, UdpIncastMatchesGolden) {
  const UdpRun oracle = RunUdp(1);
  EXPECT_EQ(oracle.digest, kGoldenUdpDigest)
      << "UDP incast stream diverged from the checked-in golden";
  EXPECT_EQ(oracle.delivered, kGoldenUdpDelivered);
}

// --- TCP incast equivalence ----------------------------------------------

TcpIncastOptions TcpOptions(int lanes) {
  TcpIncastOptions o;
  o.topo.n_clients = 4;
  o.topo.lanes = lanes;
  o.topo.seed = 99;
  o.topo.fabric = IncastFabricDefaults();
  o.topo.fabric.egress_queue_slots = 16;  // small buffer: visible incast
  o.burst_bytes = 128 * 1024;
  return o;
}

struct TcpRun {
  uint64_t digest = 0;
  uint64_t bytes = 0;
  int established = 0;
  uint64_t retransmits = 0;
  uint64_t timeouts = 0;
  uint64_t segs_rcvd = 0;
  uint64_t rtt_count = 0;
  SimTime rtt_p50 = 0;
};

TcpRun RunTcp(int lanes) {
  TcpIncastBed bed(TcpOptions(lanes));
  bed.Start();
  bed.RunFor(60 * kMillisecond);
  TcpRun r;
  r.digest = bed.Digest();
  r.bytes = bed.total_bytes();
  r.established = bed.established();
  const TcpStats stats = bed.AggregateClientStats();
  r.retransmits = stats.retransmits;
  r.timeouts = stats.timeouts;
  r.segs_rcvd = stats.segs_rcvd;
  const LatencyHistogram rtt = bed.ClientRttHistogram();
  r.rtt_count = rtt.count();
  r.rtt_p50 = rtt.P50();
  return r;
}

TEST(LaneEquivalence, TcpIncastIdenticalAcrossLaneCounts) {
  const TcpRun oracle = RunTcp(1);
  ASSERT_EQ(oracle.established, 4);
  ASSERT_GT(oracle.bytes, 0u);
  for (int lanes : {2, 4}) {
    const TcpRun run = RunTcp(lanes);
    EXPECT_EQ(run.digest, oracle.digest) << lanes << " lanes";
    EXPECT_EQ(run.bytes, oracle.bytes) << lanes << " lanes";
    EXPECT_EQ(run.established, oracle.established) << lanes << " lanes";
    EXPECT_EQ(run.retransmits, oracle.retransmits) << lanes << " lanes";
    EXPECT_EQ(run.timeouts, oracle.timeouts) << lanes << " lanes";
    EXPECT_EQ(run.segs_rcvd, oracle.segs_rcvd) << lanes << " lanes";
    EXPECT_EQ(run.rtt_count, oracle.rtt_count) << lanes << " lanes";
    EXPECT_EQ(run.rtt_p50, oracle.rtt_p50) << lanes << " lanes";
  }
}

// The fig13 observables at small N, pinned from the 1-lane oracle. Any
// engine change that moves these must update the goldens and say why.
// Updated for the RFC 6298 (5.7) backoff fix: incast is a lossy scenario,
// and the RTO backoff now survives ACKs of retransmitted (Karn-ambiguous)
// segments, resetting only on a fresh RTT sample. Goodput *rose* (25.3 MB ->
// 26.1 MB): the sustained backoff suppresses spurious repeat timeouts that
// used to collapse cwnd mid-recovery. The timer-wheel swap itself moved
// nothing here — the whole suite, these pins included, was green with the
// timers on the wheel and the old backoff semantics.
constexpr uint64_t kGoldenTcpDigest = 7560822709408149440ULL;
constexpr uint64_t kGoldenTcpBytes = 26132939;

TEST(LaneEquivalence, TcpIncastMatchesGolden) {
  const TcpRun oracle = RunTcp(1);
  EXPECT_EQ(oracle.digest, kGoldenTcpDigest)
      << "TCP incast stream diverged from the checked-in golden";
  EXPECT_EQ(oracle.bytes, kGoldenTcpBytes);
}

// Golden for the fig13_incast bench's smallest row (N=2, 3.6 GHz): the same
// topology, warm-up and measurement window the bench runs, so the published
// CSV is pinned here byte-for-byte at small N. Lane count must not matter.
// Updated for the RFC 6298 (5.7) backoff fix — see the note on
// kGoldenTcpDigest above; same mechanism (+15% goodput at N=2, where the
// 16-slot egress queue makes timeout recovery the dominant dynamic).
constexpr uint64_t kGoldenFig13Digest = 54466340423464051ULL;
constexpr uint64_t kGoldenFig13Bytes = 156431676;

TEST(LaneEquivalence, Fig13SmallNMatchesGoldenAtAnyLaneCount) {
  for (int lanes : {1, 2}) {
    TcpIncastOptions o;
    o.topo.n_clients = 2;
    o.topo.lanes = lanes;
    o.topo.seed = 42;
    o.topo.fabric = IncastFabricDefaults();
    o.topo.fabric.egress_queue_slots = 16;
    o.system_freq = 3'600'000 * kKhz;
    o.burst_bytes = 128 * 1024;
    TcpIncastBed bed(o);
    bed.Start();
    bed.RunFor(40 * kMillisecond);
    bed.window().Reset(bed.engine().Now());
    bed.RunFor(160 * kMillisecond);
    EXPECT_EQ(bed.Digest(), kGoldenFig13Digest) << "lanes=" << lanes;
    EXPECT_EQ(bed.window().bytes(), kGoldenFig13Bytes) << "lanes=" << lanes;
  }
}

// Re-running the same options in-process reproduces the same digest: no
// hidden global state leaks between beds (pools, RNGs, fabric cursors).
TEST(LaneEquivalence, RepeatedRunsAreBitIdentical) {
  const UdpRun a = RunUdp(4);
  const UdpRun b = RunUdp(4);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.delivered, b.delivered);
}

}  // namespace
}  // namespace newtos
