#include "src/core/steering.h"

#include <gtest/gtest.h>

#include "src/core/testbed.h"

namespace newtos {
namespace {

TEST(Steering, DedicatedPlanBindsStagesToDistinctCores) {
  Testbed tb;
  SteeringPlan plan = DedicatedPlan(*tb.stack(), 3'600'000 * kKhz);
  plan.Apply(tb.machine());
  EXPECT_EQ(tb.stack()->driver()->core()->id(), 1);
  EXPECT_EQ(tb.stack()->ip()->core()->id(), 2);
  EXPECT_EQ(tb.stack()->tcp()->core()->id(), 3);
  for (int i = 0; i < tb.machine().num_cores(); ++i) {
    EXPECT_EQ(tb.machine().core(i)->frequency(), 3'600'000 * kKhz);
  }
}

TEST(Steering, DedicatedSlowPlanScalesOnlySystemCores) {
  Testbed tb;
  SteeringPlan plan = DedicatedSlowPlan(*tb.stack(), 1'200'000 * kKhz, 3'600'000 * kKhz);
  plan.Apply(tb.machine());
  EXPECT_EQ(tb.machine().core(0)->frequency(), 3'600'000 * kKhz);  // app
  EXPECT_EQ(tb.machine().core(1)->frequency(), 1'200'000 * kKhz);  // driver
  EXPECT_EQ(tb.machine().core(2)->frequency(), 1'200'000 * kKhz);  // ip/pf
  EXPECT_EQ(tb.machine().core(3)->frequency(), 1'200'000 * kKhz);  // tcp/udp
  EXPECT_EQ(tb.machine().core(4)->frequency(), 3'600'000 * kKhz);  // spare app
}

TEST(Steering, ConsolidatedPlanPacksAllSystemServers) {
  Testbed tb;
  SteeringPlan plan = ConsolidatedPlan(*tb.stack(), 1, 1'600'000 * kKhz, 3'600'000 * kKhz);
  plan.Apply(tb.machine());
  for (Server* s : tb.stack()->SystemServers()) {
    EXPECT_EQ(s->core()->id(), 1) << s->name();
  }
  EXPECT_EQ(tb.machine().core(1)->frequency(), 1'600'000 * kKhz);
}

TEST(Steering, SystemCoresExtraction) {
  Testbed tb;
  SteeringPlan plan = DedicatedPlan(*tb.stack(), 3'600'000 * kKhz);
  EXPECT_EQ(SystemCores(plan), (std::vector<int>{1, 2, 3}));
  SteeringPlan packed = ConsolidatedPlan(*tb.stack(), 2, 800'000 * kKhz, 3'600'000 * kKhz);
  EXPECT_EQ(SystemCores(packed), (std::vector<int>{2}));
}

TEST(Steering, PlanNamesDescribeLayouts) {
  Testbed tb;
  EXPECT_EQ(DedicatedPlan(*tb.stack(), kGhz).name, "dedicated");
  EXPECT_EQ(DedicatedSlowPlan(*tb.stack(), kGhz, kGhz).name, "dedicated-slow");
  EXPECT_EQ(ConsolidatedPlan(*tb.stack(), 1, kGhz, kGhz).name, "consolidated");
}

TEST(Steering, ReApplyingPlansRebindsCleanly) {
  Testbed tb;
  ConsolidatedPlan(*tb.stack(), 1, 800'000 * kKhz, 3'600'000 * kKhz).Apply(tb.machine());
  EXPECT_EQ(tb.stack()->tcp()->core()->id(), 1);
  DedicatedPlan(*tb.stack(), 3'600'000 * kKhz).Apply(tb.machine());
  EXPECT_EQ(tb.stack()->tcp()->core()->id(), 3);
}

}  // namespace
}  // namespace newtos
