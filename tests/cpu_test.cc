#include "src/hw/cpu.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulation.h"

namespace newtos {
namespace {

class CpuTest : public ::testing::Test {
 protected:
  Simulation sim_;
  PowerModel pm_;
  Core core_{&sim_, 0, "cpu0", BigCoreOperatingPoints(), &pm_};
};

TEST_F(CpuTest, StartsAtTopOperatingPoint) {
  EXPECT_EQ(core_.frequency(), 4'400'000 * kKhz);  // turbo top of the table
}

TEST_F(CpuTest, WorkDurationMatchesFrequency) {
  core_.set_dvfs_transition_latency(0);  // exact-timing test: no relock stall
  core_.SetFrequency(1'000'000 * kKhz);  // snaps to 800 MHz (table entry)
  EXPECT_EQ(core_.frequency(), 800'000 * kKhz);
  SimTime done_at = -1;
  core_.Execute(800'000, [&] { done_at = sim_.Now(); });  // 1 ms at 800 MHz
  sim_.Run();
  EXPECT_EQ(done_at, kMillisecond);
}

TEST_F(CpuTest, WorkItemsSerializeFifo) {
  core_.SetFrequency(1'000'000 * kKhz);
  std::vector<int> order;
  core_.Execute(1000, [&] { order.push_back(1); });
  core_.Execute(1000, [&] { order.push_back(2); });
  core_.Execute(1000, [&] { order.push_back(3); });
  EXPECT_TRUE(core_.busy());
  sim_.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(core_.busy());
}

TEST_F(CpuTest, EstimateMatchesExecution) {
  core_.SetFrequency(3'600'000 * kKhz);
  const SimTime est = core_.EstimateCompletion(360'000);
  SimTime done_at = -1;
  core_.Execute(360'000, [&] { done_at = sim_.Now(); });
  sim_.Run();
  EXPECT_EQ(done_at, est);
}

TEST_F(CpuTest, SlowerFrequencyTakesProportionallyLonger) {
  Simulation sim2;
  Core fast(&sim2, 0, "fast", BigCoreOperatingPoints(), &pm_);
  Core slow(&sim2, 1, "slow", BigCoreOperatingPoints(), &pm_);
  fast.set_dvfs_transition_latency(0);
  slow.set_dvfs_transition_latency(0);
  fast.SetFrequency(3'600'000 * kKhz);
  slow.SetFrequency(1'200'000 * kKhz);
  SimTime t_fast = 0, t_slow = 0;
  fast.Execute(1'000'000, [&] { t_fast = sim2.Now(); });
  slow.Execute(1'000'000, [&] { t_slow = sim2.Now(); });
  sim2.Run();
  EXPECT_NEAR(static_cast<double>(t_slow) / static_cast<double>(t_fast), 3.0, 0.01);
}

TEST_F(CpuTest, HaltedIdleAddsWakeLatency) {
  core_.set_dvfs_transition_latency(0);
  core_.SetFrequency(1'000'000 * kKhz);
  core_.SetIdleActivity(CoreActivity::kHalted);
  core_.set_halt_wake_latency(7 * kMicrosecond);
  SimTime done_at = -1;
  core_.Execute(800, [&] { done_at = sim_.Now(); });  // 1 us of work at 800MHz
  sim_.Run();
  EXPECT_EQ(done_at, 7 * kMicrosecond + 1 * kMicrosecond);
}

TEST_F(CpuTest, WakeLatencyNotAppliedWhenBusy) {
  core_.SetFrequency(1'000'000 * kKhz);  // snaps to 800 MHz
  core_.SetIdleActivity(CoreActivity::kHalted);
  core_.set_halt_wake_latency(7 * kMicrosecond);
  SimTime first = -1, second = -1;
  core_.Execute(800, [&] { first = sim_.Now(); });
  core_.Execute(800, [&] { second = sim_.Now(); });  // queued while busy: no extra wake
  sim_.Run();
  EXPECT_EQ(second - first, 1 * kMicrosecond);
}

TEST_F(CpuTest, PollingIdleBurnsFullPowerHaltedDoesNot) {
  core_.set_dvfs_transition_latency(0);
  core_.SetFrequency(3'600'000 * kKhz);
  core_.SetIdleActivity(CoreActivity::kPolling);
  const double polling = core_.CurrentWatts();
  core_.SetIdleActivity(CoreActivity::kHalted);
  const double halted = core_.CurrentWatts();
  EXPECT_GT(polling, 4.0);
  EXPECT_LT(halted, 1.0);
}

TEST_F(CpuTest, EnergyAccumulatesWhilePolling) {
  core_.SetFrequency(3'600'000 * kKhz);
  sim_.RunFor(kSecond);
  const double joules = core_.JoulesAt(sim_.Now());
  EXPECT_NEAR(joules, core_.CurrentWatts(), 0.01);  // 1 second at constant draw
}

TEST_F(CpuTest, UtilizationTracksBusyFraction) {
  core_.SetFrequency(1'000'000 * kKhz);  // 800 MHz
  const SimTime start = sim_.Now();
  core_.Execute(400'000, nullptr);  // 0.5 ms of work at 800 MHz
  sim_.RunFor(kMillisecond);
  EXPECT_NEAR(core_.UtilizationSince(start, sim_.Now()), 0.5, 0.01);
}

TEST_F(CpuTest, ResetStatsClearsCounters) {
  core_.Execute(1000, nullptr);
  sim_.Run();
  EXPECT_GT(core_.busy_cycles(), 0);
  core_.ResetStatsAt(sim_.Now());
  EXPECT_EQ(core_.busy_cycles(), 0);
  EXPECT_EQ(core_.busy_time(), 0);
  EXPECT_EQ(core_.work_items(), 0u);
  EXPECT_DOUBLE_EQ(core_.JoulesAt(sim_.Now()), 0.0);
}

TEST_F(CpuTest, FrequencyChangeAppliesToSubsequentWork) {
  core_.set_dvfs_transition_latency(0);
  core_.SetFrequency(800'000 * kKhz);
  SimTime t1 = -1;
  core_.Execute(800'000, [&] { t1 = sim_.Now(); });  // 1 ms at 800 MHz
  core_.SetFrequency(3'600'000 * kKhz);              // mid-queue change
  SimTime t2 = -1;
  core_.Execute(3'600'000, [&] { t2 = sim_.Now(); });  // 1 ms at 3.6 GHz
  sim_.Run();
  EXPECT_EQ(t1, kMillisecond);
  EXPECT_EQ(t2, 2 * kMillisecond);
}

TEST_F(CpuTest, DvfsTransitionStallsTheCore) {
  core_.set_dvfs_transition_latency(10 * kMicrosecond);
  core_.SetFrequency(1'000'000 * kKhz);  // 4.4 GHz -> 800 MHz: one transition
  EXPECT_EQ(core_.dvfs_transitions(), 1u);
  EXPECT_TRUE(core_.busy());  // relocking
  SimTime done_at = -1;
  core_.Execute(800, [&] { done_at = sim_.Now(); });  // 1 us at 800 MHz
  sim_.Run();
  EXPECT_EQ(done_at, 10 * kMicrosecond + 1 * kMicrosecond);
}

TEST_F(CpuTest, SettingSameFrequencyIsFree) {
  core_.SetFrequency(3'600'000 * kKhz);
  const uint64_t transitions = core_.dvfs_transitions();
  core_.SetFrequency(3'600'000 * kKhz);  // same OP: no stall, no count
  EXPECT_EQ(core_.dvfs_transitions(), transitions);
  EXPECT_EQ(core_.EstimateCompletion(0) > sim_.Now() + 20 * kMicrosecond, false);
}

TEST_F(CpuTest, ZeroCycleWorkCompletesImmediately) {
  SimTime at = -1;
  core_.Execute(0, [&] { at = sim_.Now(); });
  sim_.Run();
  EXPECT_EQ(at, 0);
}

}  // namespace
}  // namespace newtos
