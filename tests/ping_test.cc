// ICMP echo (ping) tests: codec, filter interaction, end-to-end RTT.

#include "src/workload/ping.h"

#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "src/net/codec.h"
#include "src/net/filter.h"
#include "src/workload/iperf.h"

namespace newtos {
namespace {

TEST(Icmp, CodecRoundTripsEcho) {
  PacketPtr p = MakePacket();
  p->ip.proto = IpProto::kIcmp;
  p->ip.src = Ipv4(10, 0, 0, 2);
  p->ip.dst = Ipv4(10, 0, 0, 1);
  p->icmp.type = kIcmpEchoRequest;
  p->icmp.id = 0xbeef;
  p->icmp.seq = 42;
  p->payload_bytes = 56;
  auto frame = SerializePacket(*p);
  EXPECT_EQ(frame.size(), p->FrameBytes());
  auto parsed = ParsePacket(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->ip_checksum_ok);
  EXPECT_TRUE(parsed->l4_checksum_ok);
  EXPECT_EQ(parsed->packet.ip.proto, IpProto::kIcmp);
  EXPECT_EQ(parsed->packet.icmp.type, kIcmpEchoRequest);
  EXPECT_EQ(parsed->packet.icmp.id, 0xbeef);
  EXPECT_EQ(parsed->packet.icmp.seq, 42);
  EXPECT_EQ(parsed->packet.payload_bytes, 56u);
}

TEST(Icmp, CorruptionBreaksIcmpChecksum) {
  PacketPtr p = MakePacket();
  p->ip.proto = IpProto::kIcmp;
  p->payload_bytes = 32;
  auto frame = SerializePacket(*p);
  frame[frame.size() - 1] ^= 0xff;
  auto parsed = ParsePacket(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->l4_checksum_ok);
}

TEST(Icmp, PortFilterRulesDoNotMatchIcmp) {
  FilterRule port_rule;
  port_rule.dst_port = 80;
  Packet icmp;
  icmp.ip.proto = IpProto::kIcmp;
  EXPECT_FALSE(port_rule.Matches(icmp));
  FilterRule any;
  EXPECT_TRUE(any.Matches(icmp));
}

TEST(Ping, EchoRepliesComeBackWithMatchingIdAndSeq) {
  Testbed tb;
  PingClient::Params pp;
  pp.target = tb.sut_addr();
  pp.pings_per_sec = 1000;
  PingClient ping(&tb.peer(), pp);
  ping.Start();
  tb.sim().RunFor(100 * kMillisecond);
  ping.Stop();
  EXPECT_GE(ping.sent(), 99u);
  // Every request answered (modulo the last in flight).
  EXPECT_GE(ping.received(), ping.sent() - 2);
  EXPECT_EQ(tb.stack()->ip()->icmp_echoes_answered(), ping.received());
  EXPECT_GT(ping.rtt().P50(), 10 * kMicrosecond);
  EXPECT_LT(ping.rtt().P50(), 100 * kMicrosecond);
}

TEST(Ping, RttGrowsWhenDriverAndIpSlowDown) {
  auto rtt = [](FreqKhz f) {
    Testbed tb;
    tb.machine().core(1)->SetFrequency(f);
    tb.machine().core(2)->SetFrequency(f);
    PingClient::Params pp;
    pp.target = tb.sut_addr();
    pp.pings_per_sec = 5000;
    PingClient ping(&tb.peer(), pp);
    ping.Start();
    tb.sim().RunFor(100 * kMillisecond);
    return ping.rtt().P50();
  };
  EXPECT_LT(rtt(3'600'000 * kKhz), rtt(600'000 * kKhz));
}

TEST(Ping, RepliesKeepFlowingDuringBulkLoad) {
  Testbed tb;
  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();

  PingClient::Params pp;
  pp.target = tb.sut_addr();
  pp.pings_per_sec = 1000;
  PingClient ping(&tb.peer(), pp);
  ping.Start();

  tb.sim().RunFor(200 * kMillisecond);
  EXPECT_GT(sink.total_bytes(), 0u);
  EXPECT_GE(ping.received(), ping.sent() * 9 / 10);
}

TEST(Ping, EchoToWrongAddressIsDropped) {
  Testbed tb;
  PingClient::Params pp;
  pp.target = Ipv4(10, 99, 99, 99);  // nobody home
  PingClient ping(&tb.peer(), pp);
  ping.Start();
  tb.sim().RunFor(50 * kMillisecond);
  EXPECT_GT(ping.sent(), 0u);
  EXPECT_EQ(ping.received(), 0u);
}

}  // namespace
}  // namespace newtos
