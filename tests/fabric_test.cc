// Switch-fabric model tests: port FIFO ordering, switching latency,
// shared-backplane bandwidth, egress tail drop under incast fan-in, and
// routing. All hosts share one Simulation here — the fabric's contract is
// identical with or without lanes; lane_test.cc covers the parallel side.

#include "src/fabric/switch.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/net/packet.h"
#include "src/sim/simulation.h"

namespace newtos {
namespace {

constexpr Ipv4Addr kAddrA = Ipv4(10, 0, 0, 1);
constexpr Ipv4Addr kAddrB = Ipv4(10, 0, 0, 2);
constexpr Ipv4Addr kAddrC = Ipv4(10, 0, 0, 3);
constexpr Ipv4Addr kAddrD = Ipv4(10, 0, 0, 4);

PacketPtr Frame(Ipv4Addr src, Ipv4Addr dst, uint32_t payload, uint64_t tag = 0) {
  PacketPtr p = MakePacket();
  p->ip.proto = IpProto::kUdp;
  p->ip.src = src;
  p->ip.dst = dst;
  p->payload_bytes = payload;
  p->app_tag = tag;
  return p;
}

// Runs the simulation in lookahead windows, flushing the fabric at each
// boundary — exactly what LaneEngine does, inlined for single-sim tests.
void Pump(Simulation& sim, Switch& sw, SimTime duration) {
  const SimTime until = sim.Now() + duration;
  while (sim.Now() < until) {
    sim.RunUntil(std::min(sim.Now() + sw.Lookahead(), until));
    sw.Flush();
  }
  // Drain arrivals scheduled by the final flush.
  sim.Run();
  sw.Flush();
  sim.Run();
}

class FabricTest : public ::testing::Test {
 protected:
  explicit FabricTest(SwitchParams params = {}) : sw_(params) {}

  // Attaches a NIC and records every host-visible arrival (time, app_tag).
  Nic* AddHost(Ipv4Addr addr) {
    nics_.push_back(std::make_unique<Nic>(&sim_, "nic", Nic::Params{}));
    Nic* nic = nics_.back().get();
    sw_.AttachNic(nic, &sim_, addr);
    arrivals_.push_back(std::make_unique<std::vector<std::pair<SimTime, uint64_t>>>());
    auto* log = arrivals_.back().get();
    nic->SetRxNotify([this, nic, log] {
      while (PacketPtr p = nic->PollRx()) {
        log->emplace_back(sim_.Now(), p->app_tag);
      }
    });
    return nic;
  }

  const std::vector<std::pair<SimTime, uint64_t>>& arrivals(int host) {
    return *arrivals_[static_cast<size_t>(host)];
  }

  Simulation sim_;
  Switch sw_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::vector<std::unique_ptr<std::vector<std::pair<SimTime, uint64_t>>>> arrivals_;
};

TEST_F(FabricTest, PortPreservesFifoOrderAndLineRateSpacing) {
  Nic* a = AddHost(kAddrA);
  AddHost(kAddrB);
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(a->Transmit(Frame(kAddrA, kAddrB, 1000, i)));
  }
  Pump(sim_, sw_, 1 * kMillisecond);

  ASSERT_EQ(arrivals(1).size(), 8u);
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(arrivals(1)[i].second, i) << "frames reordered through the port";
  }
  // Back-to-back frames leave the egress wire one serialization time apart.
  const SimTime ser = sw_.EgressSerializationTime(Frame(kAddrA, kAddrB, 1000)->FrameBytes());
  for (size_t i = 1; i < 8; ++i) {
    EXPECT_EQ(arrivals(1)[i].first - arrivals(1)[i - 1].first, ser);
  }
}

TEST(FabricLatencyTest, SwitchingLatencyShiftsArrivalOneForOne) {
  SimTime base_arrival = 0;
  for (SimTime extra : {SimTime{0}, 5 * kMicrosecond}) {
    SwitchParams params;
    params.switching_latency = 1 * kMicrosecond + extra;
    Simulation sim;
    Switch sw(params);
    Nic a(&sim, "a", {});
    Nic b(&sim, "b", {});
    sw.AttachNic(&a, &sim, kAddrA);
    sw.AttachNic(&b, &sim, kAddrB);
    SimTime arrival = 0;
    b.SetRxNotify([&] {
      while (PacketPtr p = b.PollRx()) {
        arrival = sim.Now();
      }
    });
    a.Transmit(Frame(kAddrA, kAddrB, 1000));
    Pump(sim, sw, 1 * kMillisecond);
    ASSERT_GT(arrival, 0);
    if (extra == 0) {
      base_arrival = arrival;
    } else {
      EXPECT_EQ(arrival - base_arrival, extra);
    }
  }
}

TEST(FabricBackplaneTest, SharedFabricBandwidthSerializesCrossTraffic) {
  // a->c and b->d at the same instant. With a non-blocking backplane both
  // pairs are independent and arrive together; with a shared backplane at
  // port rate, the second frame waits one fabric serialization behind the
  // first (ties break by ingress port id, so a's frame goes first).
  for (double fabric_gbps : {0.0, 10.0}) {
    SwitchParams params;
    params.fabric_gbps = fabric_gbps;
    Simulation sim;
    Switch sw(params);
    Nic a(&sim, "a", {}), b(&sim, "b", {}), c(&sim, "c", {}), d(&sim, "d", {});
    sw.AttachNic(&a, &sim, kAddrA);
    sw.AttachNic(&b, &sim, kAddrB);
    sw.AttachNic(&c, &sim, kAddrC);
    sw.AttachNic(&d, &sim, kAddrD);
    SimTime at_c = 0, at_d = 0;
    c.SetRxNotify([&] {
      while (c.PollRx()) {
        at_c = sim.Now();
      }
    });
    d.SetRxNotify([&] {
      while (d.PollRx()) {
        at_d = sim.Now();
      }
    });
    a.Transmit(Frame(kAddrA, kAddrC, 1000));
    b.Transmit(Frame(kAddrB, kAddrD, 1000));
    Pump(sim, sw, 1 * kMillisecond);
    ASSERT_GT(at_c, 0);
    ASSERT_GT(at_d, 0);
    if (fabric_gbps == 0.0) {
      EXPECT_EQ(at_c, at_d) << "non-blocking backplane must not couple ports";
    } else {
      const SimTime fabric_ser =
          sw.EgressSerializationTime(Frame(kAddrA, kAddrC, 1000)->FrameBytes());
      EXPECT_EQ(at_d - at_c, fabric_ser) << "shared backplane must serialize";
    }
  }
}

class IncastDropTest : public FabricTest {
 protected:
  static SwitchParams Params() {
    SwitchParams p;
    p.egress_queue_slots = 8;
    return p;
  }
  IncastDropTest() : FabricTest(Params()) {}
};

TEST_F(IncastDropTest, EgressQueueTailDropsIncastOverflow) {
  Nic* a = AddHost(kAddrA);
  Nic* b = AddHost(kAddrB);
  AddHost(kAddrC);
  // Two senders at full line rate into one egress port: 2x oversubscribed,
  // 8-frame buffer => sustained tail drop.
  const int per_sender = 64;
  for (uint64_t i = 0; i < per_sender; ++i) {
    ASSERT_TRUE(a->Transmit(Frame(kAddrA, kAddrC, 1400, i)));
    ASSERT_TRUE(b->Transmit(Frame(kAddrB, kAddrC, 1400, i)));
  }
  Pump(sim_, sw_, 5 * kMillisecond);

  const Switch::PortStats& out = sw_.port_stats(2);
  EXPECT_GT(out.egress_drops, 0u) << "2x incast into an 8-slot buffer must drop";
  EXPECT_EQ(out.out_frames, arrivals(2).size());
  // Conservation: every ingress frame was either delivered or tail-dropped.
  EXPECT_EQ(sw_.port_stats(0).in_frames + sw_.port_stats(1).in_frames,
            out.out_frames + out.egress_drops);
  EXPECT_EQ(sw_.stats().unrouted_drops, 0u);
}

TEST(FabricFairnessTest, FairShareAcrossCompetingSenders) {
  // Tag frames per sender and check delivered counts stay balanced when two
  // equal senders overflow one egress port.
  SwitchParams params;
  params.egress_queue_slots = 8;
  Simulation sim;
  Switch sw(params);
  Nic a(&sim, "a", {}), b(&sim, "b", {}), c(&sim, "c", {});
  sw.AttachNic(&a, &sim, kAddrA);
  sw.AttachNic(&b, &sim, kAddrB);
  sw.AttachNic(&c, &sim, kAddrC);
  uint64_t from_a = 0, from_b = 0;
  c.SetRxNotify([&] {
    while (PacketPtr p = c.PollRx()) {
      (p->app_tag == 1 ? from_a : from_b)++;
    }
  });
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(a.Transmit(Frame(kAddrA, kAddrC, 1400, 1)));
    ASSERT_TRUE(b.Transmit(Frame(kAddrB, kAddrC, 1400, 2)));
  }
  Pump(sim, sw, 5 * kMillisecond);
  ASSERT_GT(from_a + from_b, 0u);
  const uint64_t diff = from_a > from_b ? from_a - from_b : from_b - from_a;
  EXPECT_LE(diff, 2u) << "equal offered load must split the egress port evenly";
}

TEST_F(FabricTest, UnroutedDestinationIsDroppedAndCounted) {
  Nic* a = AddHost(kAddrA);
  AddHost(kAddrB);
  a->Transmit(Frame(kAddrA, Ipv4(10, 9, 9, 9), 100));
  Pump(sim_, sw_, 1 * kMillisecond);
  EXPECT_EQ(sw_.stats().unrouted_drops, 1u);
  EXPECT_EQ(sw_.stats().routed_frames, 0u);
  EXPECT_TRUE(arrivals(1).empty());
}

TEST_F(FabricTest, MultiHomedAddressBinding) {
  Nic* a = AddHost(kAddrA);
  AddHost(kAddrB);
  sw_.BindAddress(kAddrC, 1);  // second address out of port 1
  a->Transmit(Frame(kAddrA, kAddrC, 100, 77));
  Pump(sim_, sw_, 1 * kMillisecond);
  ASSERT_EQ(arrivals(1).size(), 1u);
  EXPECT_EQ(arrivals(1)[0].second, 77u);
}

TEST(FabricLookaheadTest, LookaheadIsSwitchingPlusMinPropagation) {
  SwitchParams params;
  params.switching_latency = 3 * kMicrosecond;
  params.port_propagation = 4 * kMicrosecond;
  Simulation sim;
  Switch sw(params);
  Nic a(&sim, "a", {}), b(&sim, "b", {});
  sw.AttachNic(&a, &sim, kAddrA);
  sw.AttachNic(&b, &sim, kAddrB, 2 * kMicrosecond);  // shorter cable wins
  EXPECT_EQ(sw.Lookahead(), 5 * kMicrosecond);
}

}  // namespace
}  // namespace newtos
