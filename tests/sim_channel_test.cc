#include "src/chan/sim_channel.h"

#include <gtest/gtest.h>

#include "src/sim/simulation.h"

namespace newtos {
namespace {

TEST(SimChannel, FifoPushPop) {
  Simulation sim;
  SimChannel<int> ch(&sim, "t", 8);
  EXPECT_TRUE(ch.Push(1));
  EXPECT_TRUE(ch.Push(2));
  EXPECT_EQ(ch.Pop(), std::optional<int>(1));
  EXPECT_EQ(ch.Pop(), std::optional<int>(2));
  EXPECT_EQ(ch.Pop(), std::nullopt);
}

TEST(SimChannel, FullChannelDropsAndCounts) {
  Simulation sim;
  SimChannel<int> ch(&sim, "t", 2);
  EXPECT_TRUE(ch.Push(1));
  EXPECT_TRUE(ch.Push(2));
  EXPECT_FALSE(ch.Push(3));
  EXPECT_EQ(ch.stats().full_drops, 1u);
  EXPECT_EQ(ch.stats().pushes, 2u);
}

TEST(SimChannel, NotifyFiresAfterVisibilityLatency) {
  Simulation sim;
  ChannelCostModel cost;
  cost.visibility_latency = 100 * kNanosecond;
  SimChannel<int> ch(&sim, "t", 8, cost);
  SimTime notified_at = -1;
  ch.SetNotify([&] { notified_at = sim.Now(); });
  ch.Push(1);
  EXPECT_EQ(notified_at, -1);  // not yet visible
  sim.Run();
  EXPECT_EQ(notified_at, 100 * kNanosecond);
}

TEST(SimChannel, NotifyOnlyOnEmptyToNonEmpty) {
  Simulation sim;
  SimChannel<int> ch(&sim, "t", 8);
  int notifies = 0;
  ch.SetNotify([&] { ++notifies; });
  ch.Push(1);
  ch.Push(2);  // channel already non-empty: no second notify scheduled
  sim.Run();
  EXPECT_EQ(notifies, 1);
}

TEST(SimChannel, NotifySkippedIfDrainedBeforeVisibility) {
  Simulation sim;
  SimChannel<int> ch(&sim, "t", 8);
  int notifies = 0;
  ch.SetNotify([&] { ++notifies; });
  ch.Push(1);
  ch.Pop();  // consumer raced ahead
  sim.Run();
  EXPECT_EQ(notifies, 0);
}

TEST(SimChannel, MaxDepthTracked) {
  Simulation sim;
  SimChannel<int> ch(&sim, "t", 8);
  ch.Push(1);
  ch.Push(2);
  ch.Push(3);
  ch.Pop();
  ch.Push(4);
  EXPECT_EQ(ch.stats().max_depth, 3u);
}

TEST(SimChannel, FrontPeeks) {
  Simulation sim;
  SimChannel<int> ch(&sim, "t", 8);
  EXPECT_EQ(ch.Front(), nullptr);
  ch.Push(9);
  ASSERT_NE(ch.Front(), nullptr);
  EXPECT_EQ(*ch.Front(), 9);
  EXPECT_EQ(ch.size(), 1u);
}

TEST(SimChannel, RepeatedEmptyTransitionsRenotify) {
  Simulation sim;
  SimChannel<int> ch(&sim, "t", 8);
  int notifies = 0;
  ch.SetNotify([&] {
    ++notifies;
    while (ch.Pop()) {
    }
  });
  ch.Push(1);
  sim.Run();
  ch.Push(2);
  sim.Run();
  EXPECT_EQ(notifies, 2);
}

}  // namespace
}  // namespace newtos
