// ChannelChecker: SPSC protocol validation on simulated rings — identity
// binding, FIFO/cursor monotonicity through fault taps, handle reuse, and
// the offline vector-clock trace analysis.

#include "src/check/channel_checker.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/chan/sim_channel.h"
#include "src/check/stack_check.h"
#include "src/core/steering.h"
#include "src/core/testbed.h"
#include "src/fault/fault_injector.h"
#include "src/fault/watchdog.h"
#include "src/os/microreboot.h"
#include "src/trace/stack_trace.h"
#include "src/workload/iperf.h"

#if !NEWTOS_CHECKERS
#error "channel_checker_test requires NEWTOS_CHECKERS (on by default)"
#endif

namespace newtos {
namespace {

bool HasRule(const ChannelChecker& check, const std::string& rule) {
  for (const ChannelChecker::Violation& v : check.violations()) {
    if (v.rule == rule) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Identity binding on live channels.

TEST(ChannelChecker, DetectsSecondProducer) {
  Simulation sim;
  SimChannel<int> chan(&sim, "ring", 8);
  ChannelChecker check;
  const uint32_t alice = check.RegisterActor("alice");
  const uint32_t bob = check.RegisterActor("bob");
  chan.EnableCheck(&check);
  {
    ChannelChecker::ScopedActor scope(&check, alice);
    chan.Push(1);
  }
  EXPECT_TRUE(check.ok());
  {
    ChannelChecker::ScopedActor scope(&check, bob);  // the wiring bug
    chan.Push(2);
  }
  EXPECT_FALSE(check.ok());
  EXPECT_TRUE(HasRule(check, "second-producer"));
  EXPECT_EQ(check.violations()[0].ring, "ring");
}

TEST(ChannelChecker, DetectsSecondConsumerEvenOnSharedRings) {
  Simulation sim;
  SimChannel<int> chan(&sim, "ring", 8);
  ChannelChecker check;
  const uint32_t alice = check.RegisterActor("alice");
  const uint32_t bob = check.RegisterActor("bob");
  chan.EnableCheck(&check);
  check.DeclareSharedProducers(&chan, "test: many producers by design");
  {
    ChannelChecker::ScopedActor scope(&check, alice);
    chan.Push(1);
    chan.Push(2);
  }
  {
    ChannelChecker::ScopedActor scope(&check, bob);
    chan.Push(3);  // fine: producers are declared shared
    chan.Pop();    // bob binds the consumer side
  }
  EXPECT_TRUE(check.ok());
  {
    ChannelChecker::ScopedActor scope(&check, alice);
    chan.Pop();  // shared covers producers only, never consumers
  }
  EXPECT_TRUE(HasRule(check, "second-consumer"));
}

TEST(ChannelChecker, AnonymousOperationsNeitherBindNorViolate) {
  Simulation sim;
  SimChannel<int> chan(&sim, "ring", 8);
  ChannelChecker check;
  const uint32_t alice = check.RegisterActor("alice");
  chan.EnableCheck(&check);
  chan.Push(1);  // no actor in scope: a test poking the channel directly
  {
    ChannelChecker::ScopedActor scope(&check, alice);
    chan.Push(2);  // alice binds the producer side
  }
  chan.Pop();  // anonymous again
  EXPECT_TRUE(check.ok());
}

// ---------------------------------------------------------------------------
// FIFO and cursor discipline through fault taps.

TEST(ChannelChecker, DelayTapPreservesFifoOrder) {
  // The regression this PR fixes: a pass-through message overtaking one held
  // by a delay tap used to reorder delivery. The checker watches delivery
  // seqs; head-of-line blocking in SimChannel now keeps them monotone.
  Simulation sim;
  SimChannel<int> chan(&sim, "ring", 8);
  ChannelChecker check;
  chan.EnableCheck(&check);
  chan.SetTap([](int& v) {
    ChanTapDecision d;
    if (v == 0) {
      d.action = ChanTapAction::kDelay;
      d.delay = 100 * kMicrosecond;
    }
    return d;
  });
  chan.Push(0);  // held
  chan.Push(1);  // queues behind the held message
  chan.Push(2);
  sim.RunFor(kMillisecond);
  EXPECT_EQ(chan.size(), 3u);
  EXPECT_EQ(*chan.Pop(), 0);
  EXPECT_EQ(*chan.Pop(), 1);
  EXPECT_EQ(*chan.Pop(), 2);
  EXPECT_TRUE(check.ok()) << [&] {
    std::ostringstream os;
    check.Report(os);
    return os.str();
  }();
}

TEST(ChannelChecker, DuplicateTapDeliversCleanly) {
  Simulation sim;
  SimChannel<int> chan(&sim, "ring", 8);
  ChannelChecker check;
  chan.EnableCheck(&check);
  chan.SetTap([](int& v) {
    ChanTapDecision d;
    if (v == 1) {
      d.action = ChanTapAction::kDuplicate;
    }
    return d;
  });
  chan.Push(0);
  chan.Push(1);  // delivered twice — same seq twice is legal, backwards isn't
  sim.RunFor(kMillisecond);
  EXPECT_EQ(chan.size(), 3u);
  while (chan.Pop()) {
  }
  EXPECT_TRUE(check.ok());
}

TEST(ChannelChecker, DropTapKeepsAccountsBalanced) {
  Simulation sim;
  SimChannel<int> chan(&sim, "ring", 8);
  ChannelChecker check;
  chan.EnableCheck(&check);
  int n = 0;
  chan.SetTap([&n](int&) {
    ChanTapDecision d;
    if (++n % 2 == 0) {
      d.action = ChanTapAction::kDrop;
    }
    return d;
  });
  for (int i = 0; i < 6; ++i) {
    chan.Push(i);
  }
  sim.RunFor(kMillisecond);
  while (chan.Pop()) {
  }
  EXPECT_TRUE(check.ok());
}

TEST(ChannelChecker, SyntheticReorderIsFlagged) {
  // Drive the hooks directly, as a hypothetical buggy tap would: push #2's
  // message lands before push #1's.
  ChannelChecker check;
  int ring = 0;
  check.Register(&ring, "bad-ring");
  check.OnProducerPush(&ring, 1, 0);
  check.OnProducerPush(&ring, 2, 0);
  check.OnDeliver(&ring, 2);
  check.OnDeliver(&ring, 1);  // overtaken
  EXPECT_TRUE(HasRule(check, "deliver-reorder"));
}

TEST(ChannelChecker, PopBeforePushIsFlagged) {
  ChannelChecker check;
  int ring = 0;
  check.Register(&ring, "bad-ring");
  check.OnPop(&ring, 0);  // nothing was ever delivered
  EXPECT_TRUE(HasRule(check, "pop-before-push"));
}

TEST(ChannelChecker, HandleReuseIsFlagged) {
  ChannelChecker check;
  int ring = 0;
  check.Register(&ring, "ring");
  check.OnProducerPush(&ring, 1, /*hop=*/77);
  check.OnDeliver(&ring, 1);
  check.OnProducerPush(&ring, 2, /*hop=*/77);  // recycled while in flight
  EXPECT_TRUE(HasRule(check, "handle-reuse"));
}

TEST(ChannelChecker, ViolationFloodIsSuppressedPerRingAndRule) {
  ChannelChecker check;
  int ring = 0;
  check.Register(&ring, "bad-ring");
  for (int i = 0; i < 10; ++i) {
    check.OnPop(&ring, 0);
  }
  EXPECT_EQ(check.violations().size(), 1u);
  EXPECT_EQ(check.suppressed(), 9u);
}

// ---------------------------------------------------------------------------
// Offline trace analysis (vector-clock happens-before).

TEST(ChannelChecker, AnalyzeTraceAcceptsBalancedHops) {
  TraceRecorder rec(1024);
  const TrackId t = rec.RegisterTrack("chan");
  const NameId n = rec.InternName("in-flight");
  rec.set_enabled(true);
  rec.AsyncBegin(100, t, n, /*hop=*/1);
  rec.AsyncBegin(200, t, n, /*hop=*/2);
  rec.AsyncEnd(300, t, n, /*hop=*/1);
  rec.AsyncEnd(400, t, n, /*hop=*/2);
  ChannelChecker check;
  EXPECT_EQ(check.AnalyzeTrace(rec), 0u);
  EXPECT_TRUE(check.ok());
}

TEST(ChannelChecker, AnalyzeTraceFlagsEndWithoutBegin) {
  TraceRecorder rec(1024);
  const TrackId t = rec.RegisterTrack("chan");
  const NameId n = rec.InternName("in-flight");
  rec.set_enabled(true);
  rec.AsyncEnd(300, t, n, /*hop=*/9);  // consumed a message never produced
  ChannelChecker check;
  EXPECT_GT(check.AnalyzeTrace(rec), 0u);
  EXPECT_TRUE(HasRule(check, "end-without-begin"));
}

TEST(ChannelChecker, AnalyzeTraceFlagsTimeInversion) {
  TraceRecorder rec(1024);
  const TrackId t = rec.RegisterTrack("chan");
  const NameId n = rec.InternName("in-flight");
  rec.set_enabled(true);
  rec.AsyncBegin(500, t, n, /*hop=*/1);
  rec.AsyncEnd(100, t, n, /*hop=*/1);  // delivered before it was sent
  ChannelChecker check;
  EXPECT_GT(check.AnalyzeTrace(rec), 0u);
  EXPECT_TRUE(HasRule(check, "hb-inversion"));
  EXPECT_TRUE(HasRule(check, "track-time-regression"));
}

TEST(ChannelChecker, AnalyzeTraceStrictModeFlagsHandleReuse) {
  TraceRecorder rec(1024);
  const TrackId t = rec.RegisterTrack("chan");
  const NameId n = rec.InternName("in-flight");
  rec.set_enabled(true);
  rec.AsyncBegin(100, t, n, /*hop=*/1);
  rec.AsyncBegin(200, t, n, /*hop=*/1);  // same hop in flight twice
  rec.AsyncEnd(300, t, n, /*hop=*/1);
  rec.AsyncEnd(400, t, n, /*hop=*/1);
  ChannelChecker lax;
  EXPECT_EQ(lax.AnalyzeTrace(rec), 0u);  // duplicate taps do this legitimately
  ChannelChecker strict;
  ChannelChecker::TraceOptions opts;
  opts.strict_handle_reuse = true;
  EXPECT_GT(strict.AnalyzeTrace(rec, opts), 0u);
  EXPECT_TRUE(HasRule(strict, "handle-reuse"));
}

// ---------------------------------------------------------------------------
// Full-stack integration: the wired testbed keeps the protocol clean, with
// and without fault taps in the rings.

struct RunningIperf {
  explicit RunningIperf(Testbed& tb)
      : api(tb.stack()->CreateApp("iperf", tb.machine().core(0))),
        sender(api,
               [&tb] {
                 IperfSender::Params p;
                 p.dst = tb.peer_addr();
                 return p;
               }()),
        sink(&tb.peer()) {
    sender.Start();
  }
  SocketApi* api;
  IperfSender sender;
  IperfPeerSink sink;
};

TEST(StackCheck, CleanBulkRunHasNoViolations) {
  Testbed tb;
  RunningIperf load(tb);
  ChannelChecker check;
  StackChecker wiring(&check);
  wiring.Attach(tb.stack());
  tb.sim().RunFor(200 * kMillisecond);
  EXPECT_GT(load.sink.total_bytes(), 1'000'000u);
  std::ostringstream report;
  check.Report(report);
  EXPECT_TRUE(check.ok()) << report.str();
}

TEST(StackCheck, FaultTapsPreserveChannelDiscipline) {
  // Satellite check for the fault subsystem: drops, duplicates and delays in
  // the TCP rings must never break SPSC identity, cursor monotonicity or
  // FIFO order — the taps model a misbehaving ring, not a lawless one.
  Testbed tb;
  RunningIperf load(tb);
  ChannelChecker check;
  StackChecker wiring(&check);
  wiring.Attach(tb.stack());

  FaultPlan plan;
  plan.seed = 21;
  for (const FaultClass cls :
       {FaultClass::kChanDrop, FaultClass::kChanDuplicate, FaultClass::kChanDelay}) {
    FaultSpec spec;
    spec.cls = cls;
    spec.target = "tcp";
    spec.probability = 0.01;
    plan.faults.push_back(spec);
  }
  FaultInjector injector(&tb.sim(), std::move(plan));
  injector.Arm(tb.stack());
  tb.sim().RunFor(300 * kMillisecond);

  EXPECT_GT(injector.counters().chan_drops + injector.counters().chan_dups +
                injector.counters().chan_delays,
            0u);
  std::ostringstream report;
  check.Report(report);
  EXPECT_TRUE(check.ok()) << report.str();
}

TEST(StackCheck, WatchdogRecoveryKeepsIdentitiesStable) {
  // A crash + watchdog-driven restart drains rings and replays wiring; none
  // of that may smuggle a second identity onto any ring.
  Testbed tb;
  RunningIperf load(tb);
  MicrorebootManager mgr(&tb.sim());
  WatchdogServer watchdog(&tb.sim(), &mgr, WatchdogServer::Params());
  watchdog.BindCore(tb.machine().core(tb.stack()->config().watchdog_core));
  for (Server* s : tb.stack()->SystemServers()) {
    watchdog.Watch(s, 1'000'000);
  }
  watchdog.Start();

  ChannelChecker check;
  StackChecker wiring(&check);
  wiring.Attach(tb.stack());
  wiring.AttachServer(&watchdog);

  tb.sim().RunFor(50 * kMillisecond);
  tb.stack()->ip()->Hang();  // silent failure; the watchdog must catch it
  tb.sim().RunFor(200 * kMillisecond);

  EXPECT_GE(mgr.incidents().size(), 1u);
  std::ostringstream report;
  check.Report(report);
  EXPECT_TRUE(check.ok()) << report.str();
}

TEST(StackCheck, TracedRunAnalyzesClean) {
  // The online checker and the offline trace analysis agree: a healthy
  // traced run produces an async-hop history with no causal violations.
  Testbed tb;
  StackTracer::Options topt;
  topt.ring_capacity = 1 << 19;  // the 20 ms run records ~290k events; keep them all
  topt.samplers = false;
  StackTracer tracer(&tb.sim(), tb.stack(), topt);
  RunningIperf load(tb);
  ChannelChecker check;
  StackChecker wiring(&check);
  wiring.Attach(tb.stack());
  tracer.Enable();
  tb.sim().RunFor(20 * kMillisecond);
  tracer.Disable();
  EXPECT_EQ(tracer.recorder().dropped(), 0u);
  EXPECT_EQ(check.AnalyzeTrace(tracer.recorder()), 0u);
  std::ostringstream report;
  check.Report(report);
  EXPECT_TRUE(check.ok()) << report.str();
}

}  // namespace
}  // namespace newtos
