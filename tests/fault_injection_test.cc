// Fault injection: channel taps, wire corruption, and watchdog-driven
// recovery from silent failures (hang, livelock) and crashes mid-protocol.

#include "src/fault/fault_injector.h"

#include <gtest/gtest.h>

#include "src/chan/sim_channel.h"
#include "src/core/steering.h"
#include "src/core/testbed.h"
#include "src/fault/invariants.h"
#include "src/fault/watchdog.h"
#include "src/os/microreboot.h"
#include "src/sim/random.h"
#include "src/workload/iperf.h"

namespace newtos {
namespace {

// ---------------------------------------------------------------------------
// Channel-tap semantics on a raw SimChannel.

TEST(ChanTap, DropSwallowsMessagesInTransit) {
  Simulation sim;
  SimChannel<int> chan(&sim, "t", 8);
  int n = 0;
  chan.SetTap([&n](int&) {
    ChanTapDecision d;
    if (++n % 2 == 0) {
      d.action = ChanTapAction::kDrop;
    }
    return d;
  });
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(chan.Push(i));  // injected drops still report producer success
  }
  sim.RunFor(kMillisecond);
  EXPECT_EQ(chan.size(), 3u);
  EXPECT_EQ(chan.stats().injected_drops, 3u);
  EXPECT_EQ(chan.stats().pushes, 3u);
}

TEST(ChanTap, DuplicateDeliversTwice) {
  Simulation sim;
  SimChannel<int> chan(&sim, "t", 8);
  chan.SetTap([](int& v) {
    ChanTapDecision d;
    if (v == 1) {
      d.action = ChanTapAction::kDuplicate;
    }
    return d;
  });
  chan.Push(0);
  chan.Push(1);
  sim.RunFor(kMillisecond);
  EXPECT_EQ(chan.size(), 3u);
  EXPECT_EQ(chan.stats().injected_dups, 1u);
}

TEST(ChanTap, DelayHoldsThenReleasesInOrder) {
  Simulation sim;
  SimChannel<int> chan(&sim, "t", 8);
  chan.SetTap([](int& v) {
    ChanTapDecision d;
    if (v == 0) {
      d.action = ChanTapAction::kDelay;
      d.delay = 100 * kMicrosecond;
    }
    return d;
  });
  chan.Push(0);  // held back
  chan.Push(1);  // must not overtake the held message: the ring is a FIFO
  EXPECT_EQ(chan.size(), 0u);
  sim.RunFor(200 * kMicrosecond);
  EXPECT_EQ(chan.size(), 2u);
  EXPECT_EQ(*chan.Front(), 0);  // push order preserved through the delay
  EXPECT_EQ(chan.stats().injected_delays, 1u);
}

TEST(ChanTap, SameSeedSameDecisions) {
  auto run = [](uint64_t seed) {
    Simulation sim;
    SimChannel<int> chan(&sim, "t", 64);
    Rng rng(seed);
    chan.SetTap([&rng](int&) {
      ChanTapDecision d;
      if (rng.Bernoulli(0.3)) {
        d.action = ChanTapAction::kDrop;
      }
      return d;
    });
    for (int i = 0; i < 50; ++i) {
      chan.Push(i);
    }
    sim.RunFor(kMillisecond);
    std::vector<int> survivors;
    while (auto v = chan.Pop()) {
      survivors.push_back(*v);
    }
    return survivors;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

// ---------------------------------------------------------------------------
// End-to-end injection through the stack.

struct RunningIperf {
  explicit RunningIperf(Testbed& tb)
      : api(tb.stack()->CreateApp("iperf", tb.machine().core(0))),
        sender(api,
               [&tb] {
                 IperfSender::Params p;
                 p.dst = tb.peer_addr();
                 return p;
               }()),
        sink(&tb.peer()) {
    sender.Start();
  }
  SocketApi* api;
  IperfSender sender;
  IperfPeerSink sink;
};

// Arms a watchdog over every stack server; returns it started.
struct RecoveryPlane {
  explicit RecoveryPlane(Testbed& tb)
      : mgr(&tb.sim()), watchdog(&tb.sim(), &mgr, WatchdogServer::Params()) {
    MultiserverStack* stack = tb.stack();
    watchdog.BindCore(tb.machine().core(stack->config().watchdog_core));
    const StackConfig& cfg = stack->config();
    for (Server* s : stack->SystemServers()) {
      Cycles restart = cfg.ip.restart_cycles;
      if (s->name().find("driver") != std::string::npos) restart = cfg.driver.restart_cycles;
      if (s->name().find("tcp") != std::string::npos) restart = cfg.tcp.restart_cycles;
      if (s->name().find("udp") != std::string::npos) restart = cfg.udp.restart_cycles;
      if (s->name().find("pf") != std::string::npos) restart = cfg.pf.restart_cycles;
      if (s->name().find("syscall") != std::string::npos) restart = cfg.syscall.restart_cycles;
      watchdog.Watch(s, restart);
    }
    watchdog.Start();
  }
  MicrorebootManager mgr;
  WatchdogServer watchdog;
};

TEST(FaultInjection, WireBitFlipsAreDroppedByChecksums) {
  Testbed tb;
  RunningIperf load(tb);

  FaultPlan plan;
  plan.seed = 11;
  FaultSpec spec;
  spec.cls = FaultClass::kWireBitFlip;
  spec.probability = 0.01;
  plan.faults.push_back(spec);

  FaultInjector injector(&tb.sim(), std::move(plan));
  injector.ArmWire(tb.machine().nic());
  injector.ArmWire(tb.peer().nic());
  tb.sim().RunFor(500 * kMillisecond);

  EXPECT_GT(injector.counters().wire_flips, 0u);
  // Every flipped frame was discarded at a checksum-verification point...
  const uint64_t drops = tb.stack()->ip()->rx_checksum_drops() +
                         tb.stack()->tcp()->rx_checksum_drops() +
                         tb.peer().rx_checksum_drops();
  EXPECT_GT(drops, 0u);
  // ...so no corrupt segment reached a socket, and the transfer survived.
  for (TcpConnection* c : tb.stack()->tcp()->host().Connections()) {
    EXPECT_EQ(c->stats().corrupt_segments_accepted, 0u);
  }
  for (TcpConnection* c : tb.peer().tcp().Connections()) {
    EXPECT_EQ(c->stats().corrupt_segments_accepted, 0u);
  }
  EXPECT_GT(load.sink.total_bytes(), 10'000'000u);
}

TEST(FaultInjection, ChannelCorruptionIsDroppedNotDelivered) {
  Testbed tb;
  RunningIperf load(tb);

  FaultPlan plan;
  plan.seed = 12;
  FaultSpec spec;
  spec.cls = FaultClass::kChanCorrupt;
  spec.target = "tcp";
  spec.probability = 0.02;
  plan.faults.push_back(spec);

  FaultInjector injector(&tb.sim(), std::move(plan));
  injector.Arm(tb.stack());
  tb.sim().RunFor(500 * kMillisecond);

  EXPECT_GT(injector.counters().chan_corrupts, 0u);
  EXPECT_GT(tb.stack()->tcp()->rx_checksum_drops() + tb.stack()->ip()->rx_checksum_drops(), 0u);
  for (TcpConnection* c : tb.stack()->tcp()->host().Connections()) {
    EXPECT_EQ(c->stats().corrupt_segments_accepted, 0u);
  }
  EXPECT_GT(load.sink.total_bytes(), 10'000'000u);
}

TEST(FaultInjection, WatchdogDetectsAndRecoversHang) {
  Testbed tb;
  tb.stack()->tcp()->set_checkpointing(true);
  RunningIperf load(tb);
  RecoveryPlane rp(tb);

  FaultPlan plan;
  FaultSpec spec;
  spec.cls = FaultClass::kServerHang;
  spec.target = "ip";
  spec.at = 100 * kMillisecond;
  plan.faults.push_back(spec);
  FaultInjector injector(&tb.sim(), std::move(plan));
  injector.Arm(tb.stack());

  tb.sim().RunFor(kSecond);

  EXPECT_EQ(injector.counters().hangs, 1u);
  ASSERT_FALSE(rp.watchdog.detections().empty());
  const auto& det = rp.watchdog.detections()[0];
  EXPECT_EQ(det.server, "ip");
  // Silence is noticed within the configured deadline (plus one probe period
  // of sampling slack) — not tied to the hung server ever responding.
  EXPECT_LE(det.detected_at - det.last_ack,
            rp.watchdog.DetectionDeadline() + rp.watchdog.params().heartbeat_interval);

  const RecoveryCheck rc = CheckBoundedRecovery(rp.mgr.incidents(), 100 * kMillisecond);
  EXPECT_TRUE(rc.all_recovered);
  EXPECT_TRUE(rc.all_within_bound);
  EXPECT_FALSE(tb.stack()->ip()->hung());
  EXPECT_FALSE(tb.stack()->ip()->crashed());

  // The transfer kept going after recovery.
  const uint64_t after_recovery = load.sink.total_bytes();
  tb.sim().RunFor(500 * kMillisecond);
  EXPECT_GT(load.sink.total_bytes(), after_recovery + 10'000'000u);
}

TEST(FaultInjection, WatchdogDetectsAndRecoversLivelock) {
  Testbed tb;
  tb.stack()->tcp()->set_checkpointing(true);
  RunningIperf load(tb);
  RecoveryPlane rp(tb);

  FaultPlan plan;
  FaultSpec spec;
  spec.cls = FaultClass::kServerLivelock;
  spec.target = "tcp";
  spec.at = 100 * kMillisecond;
  plan.faults.push_back(spec);
  FaultInjector injector(&tb.sim(), std::move(plan));
  injector.Arm(tb.stack());

  tb.sim().RunFor(kSecond);

  EXPECT_EQ(injector.counters().livelocks, 1u);
  ASSERT_FALSE(rp.watchdog.detections().empty());
  EXPECT_EQ(rp.watchdog.detections()[0].server, "tcp");
  const RecoveryCheck rc = CheckBoundedRecovery(rp.mgr.incidents(), 100 * kMillisecond);
  EXPECT_TRUE(rc.all_recovered);
  EXPECT_TRUE(rc.all_within_bound);
  EXPECT_FALSE(tb.stack()->tcp()->hung());
}

TEST(FaultInjection, HeartbeatsRaiseNoFalsePositivesUnderLoad) {
  Testbed tb;
  RunningIperf load(tb);
  RecoveryPlane rp(tb);
  tb.sim().RunFor(600 * kMillisecond);

  EXPECT_GT(rp.watchdog.probes_sent(), 0u);
  EXPECT_GT(rp.watchdog.acks_received(), 0u);
  EXPECT_TRUE(rp.watchdog.detections().empty())
      << "a fully loaded but healthy stack must never be escalated";
  EXPECT_TRUE(rp.mgr.incidents().empty());
  EXPECT_GT(load.sink.total_bytes(), 50'000'000u);
}

TEST(FaultInjection, BoundedRecoveryHoldsAtSlowStackFrequency) {
  // The acceptance bar: a hang is detected and repaired within the bound at
  // both the full-speed and the slowed stack plane.
  for (FreqKhz freq : {3'600'000 * kKhz, 1'200'000 * kKhz}) {
    Testbed tb;
    DedicatedSlowPlan(*tb.stack(), freq, 3'600'000 * kKhz).Apply(tb.machine());
    tb.stack()->tcp()->set_checkpointing(true);
    RunningIperf load(tb);
    RecoveryPlane rp(tb);

    FaultPlan plan;
    FaultSpec spec;
    spec.cls = FaultClass::kServerHang;
    spec.target = "tcp";
    spec.at = 100 * kMillisecond;
    plan.faults.push_back(spec);
    FaultInjector injector(&tb.sim(), std::move(plan));
    injector.Arm(tb.stack());

    tb.sim().RunFor(kSecond);

    const RecoveryCheck rc = CheckBoundedRecovery(rp.mgr.incidents(), 100 * kMillisecond);
    EXPECT_TRUE(rc.all_recovered) << "stack at " << freq << " kHz";
    EXPECT_TRUE(rc.all_within_bound)
        << "stack at " << freq << " kHz: detect " << rc.worst_detect << " recover "
        << rc.worst_recover;
  }
}

// ---------------------------------------------------------------------------
// Microreboot at protocol-critical moments.

TEST(FaultRecovery, MicrorebootDuringTcpHandshake) {
  Testbed tb;
  tb.stack()->tcp()->set_checkpointing(true);
  IperfPeerSink sink(&tb.peer());

  SocketApi* api = tb.stack()->CreateApp("client", tb.machine().core(0));
  bool established = false;
  bool closed = false;
  uint64_t handle = 0;
  api->SetEventHandler([&](const Msg& m) {
    if (m.type == MsgType::kEvtEstablished && m.handle == handle) {
      established = true;
    }
    if (m.type == MsgType::kEvtClosed && m.handle == handle) {
      closed = true;
    }
  });
  handle = api->Connect(tb.peer_addr(), kIperfPort);

  // Kill the TCP server while the SYN exchange is in flight.
  MicrorebootManager mgr(&tb.sim());
  mgr.InjectCrash(tb.stack()->tcp(), 10 * kMicrosecond, tb.stack()->config().tcp.restart_cycles);
  tb.sim().RunFor(2 * kSecond);

  // The connection attempt resolved one way or the other — nothing wedged.
  EXPECT_TRUE(mgr.AllRecovered());
  EXPECT_TRUE(established || closed)
      << "a handshake interrupted by a microreboot must complete or fail cleanly";

  // And the recovered server accepts fresh connections that move real data.
  SocketApi* api2 = tb.stack()->CreateApp("client2", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(api2, sp);
  sender.Start();
  tb.sim().RunFor(300 * kMillisecond);
  EXPECT_GT(sink.total_bytes(), 10'000'000u);
}

TEST(FaultRecovery, MicrorebootDuringSackLossRecovery) {
  TestbedOptions opt;
  opt.link_loss = 0.01;  // keep SACK loss-recovery machinery constantly busy
  opt.stack.tcp_params.sack = true;
  Testbed tb(opt);
  tb.stack()->tcp()->set_checkpointing(true);
  RunningIperf load(tb);
  tb.sim().RunFor(150 * kMillisecond);
  const uint64_t before = load.sink.total_bytes();
  ASSERT_GT(before, 0u);

  // Crash mid-transfer: on a 1% lossy link the sender is essentially always
  // holding SACK state for some hole when the server dies.
  MicrorebootManager mgr(&tb.sim());
  mgr.InjectCrash(tb.stack()->tcp(), tb.sim().Now() + kMillisecond,
                  tb.stack()->config().tcp.restart_cycles);
  tb.sim().RunFor(3 * kSecond);

  EXPECT_TRUE(mgr.AllRecovered());
  EXPECT_EQ(tb.stack()->tcp()->host().connection_count(), 1u);
  EXPECT_GT(load.sink.total_bytes(), before + 10'000'000u)
      << "the stream must resume after a reboot that interrupted loss recovery";
}

}  // namespace
}  // namespace newtos
