// Sharded TCP server tests: flow demux, gateway routing, scaling.

#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "src/workload/httpd.h"
#include "src/workload/iperf.h"

namespace newtos {
namespace {

TestbedOptions ShardedOptions(int shards) {
  TestbedOptions opt;
  opt.machine.num_cores = 7;
  opt.stack.tcp_shards = shards;
  opt.stack.use_syscall_gateway = true;  // keep the gateway even at 1 shard
  return opt;
}

void BindShards(Testbed& tb) {
  // driver->1, ip/pf/gateway->2, shards->3.., apps on 0.
  Machine& m = tb.machine();
  tb.stack()->driver()->BindCore(m.core(1));
  tb.stack()->ip()->BindCore(m.core(2));
  if (tb.stack()->pf() != nullptr) {
    tb.stack()->pf()->BindCore(m.core(2));
  }
  tb.stack()->syscall()->BindCore(m.core(2));
  tb.stack()->udp()->BindCore(m.core(1));
  for (int i = 0; i < tb.stack()->tcp_shard_count(); ++i) {
    tb.stack()->tcp_shard(i)->BindCore(m.core(3 + i));
  }
}

TEST(TcpSharding, ShardingAutoEnablesGateway) {
  Testbed tb(ShardedOptions(2));
  EXPECT_NE(tb.stack()->syscall(), nullptr);
  EXPECT_EQ(tb.stack()->tcp_shard_count(), 2);
}

TEST(TcpSharding, AcceptedConnectionsSpreadAcrossShards) {
  Testbed tb(ShardedOptions(3));
  BindShards(tb);
  SocketApi* api = tb.stack()->CreateApp("httpd", tb.machine().core(0));
  HttpParams hp;
  hp.concurrency = 32;
  HttpServerApp server(api, hp);
  server.Start();
  tb.sim().RunFor(2 * kMillisecond);
  HttpPeerClient client(&tb.peer(), tb.sut_addr(), hp);
  client.Start();
  tb.sim().RunFor(50 * kMillisecond);

  int shards_used = 0;
  for (int i = 0; i < 3; ++i) {
    if (tb.stack()->tcp_shard(i)->host().connection_count() > 0) {
      ++shards_used;
    }
  }
  EXPECT_GE(shards_used, 2) << "32 flows must hash onto more than one shard";
  EXPECT_GT(client.responses(), 100u);
}

TEST(TcpSharding, ActiveConnectionsPickRssCompatiblePorts) {
  Testbed tb(ShardedOptions(2));
  BindShards(tb);
  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  sp.connections = 6;
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();
  tb.sim().RunFor(100 * kMillisecond);

  // Round-robin connects: both shards own connections, and every connection
  // key hashes to the shard that owns it (RSS consistency).
  for (int i = 0; i < 2; ++i) {
    TcpServer* shard = tb.stack()->tcp_shard(i);
    EXPECT_GT(shard->host().connection_count(), 0u) << "shard " << i;
    for (TcpConnection* c : shard->host().Connections()) {
      EXPECT_EQ(SymmetricFlowHash(c->key()) % 2, static_cast<size_t>(i));
    }
  }
  EXPECT_GT(sink.total_bytes(), 0u);
}

TEST(TcpSharding, AcceptHandleEncodesShard) {
  EXPECT_TRUE(TcpServer::IsAcceptHandle((1ULL << 62) | (5ULL << 48) | 7));
  EXPECT_FALSE(TcpServer::IsAcceptHandle(42));
  EXPECT_EQ(TcpServer::ShardOfAcceptHandle((1ULL << 62) | (5ULL << 48) | 7), 5u);
}

TEST(TcpSharding, TwoShardsBeatOneOnSlowCores) {
  // HTTP load: TCP RX segment processing (which, unlike cumulative ACKs,
  // cannot be thinned under overload) saturates a single 1.2 GHz shard.
  auto rps = [](int shards) {
    Testbed tb(ShardedOptions(shards));
    BindShards(tb);
    for (int i = 0; i < shards; ++i) {
      tb.machine().core(3 + i)->SetFrequency(1'200'000 * kKhz);
    }
    SocketApi* api = tb.stack()->CreateApp("httpd", tb.machine().core(0));
    HttpParams hp;
    hp.concurrency = 64;
    hp.server_compute_cycles = 2'000;
    HttpServerApp server(api, hp);
    server.Start();
    tb.sim().RunFor(2 * kMillisecond);
    HttpPeerClient client(&tb.peer(), tb.sut_addr(), hp);
    client.Start();
    tb.sim().RunFor(100 * kMillisecond);
    client.ResetWindow(tb.sim().Now());
    tb.sim().RunFor(200 * kMillisecond);
    return client.window().EventsPerSec(tb.sim().Now());
  };
  const double one = rps(1);
  const double two = rps(2);
  EXPECT_GT(two, one * 1.3) << "one=" << one << " two=" << two;
}

TEST(TcpSharding, SingleShardConfigStillWorksThroughGateway) {
  TestbedOptions opt;
  opt.stack.tcp_shards = 1;
  opt.stack.use_syscall_gateway = true;
  Testbed tb(opt);
  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();
  tb.sim().RunFor(100 * kMillisecond);
  EXPECT_GT(sink.total_bytes(), 0u);
}

TEST(TcpSharding, ShardCrashOnlyKillsItsOwnConnections) {
  Testbed tb(ShardedOptions(2));
  BindShards(tb);
  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  sp.connections = 4;  // round-robin: 2 per shard
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();
  tb.sim().RunFor(100 * kMillisecond);
  const size_t shard1_conns = tb.stack()->tcp_shard(1)->host().connection_count();
  ASSERT_GT(shard1_conns, 0u);

  tb.stack()->tcp_shard(0)->Crash();
  tb.sim().RunFor(10 * kMillisecond);
  EXPECT_EQ(tb.stack()->tcp_shard(0)->host().connection_count(), 0u);
  EXPECT_EQ(tb.stack()->tcp_shard(1)->host().connection_count(), shard1_conns);

  // Shard 1 keeps moving data while shard 0 is down.
  sink.window().Reset(tb.sim().Now());
  tb.sim().RunFor(100 * kMillisecond);
  EXPECT_GT(sink.window().bytes(), 0u);
}

}  // namespace
}  // namespace newtos
