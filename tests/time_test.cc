#include "src/sim/time.h"

#include <gtest/gtest.h>

namespace newtos {
namespace {

TEST(Time, UnitRelations) {
  EXPECT_EQ(kNanosecond, 1000 * kPicosecond);
  EXPECT_EQ(kMicrosecond, 1000 * kNanosecond);
  EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kGhz, 1000 * kMhz);
}

TEST(Time, CyclesToTimeExactAtRoundFrequencies) {
  // 1 cycle @ 1 GHz = 1 ns; @ 4 GHz = 250 ps; @ 2.5 GHz = 400 ps.
  EXPECT_EQ(CyclesToTime(1, 1 * kGhz), 1 * kNanosecond);
  EXPECT_EQ(CyclesToTime(1, 4 * kGhz), 250);
  EXPECT_EQ(CyclesToTime(1, 2'500'000 * kKhz), 400);
  EXPECT_EQ(CyclesToTime(1000, 1 * kGhz), 1 * kMicrosecond);
}

TEST(Time, CyclesToTimeZeroAndLarge) {
  EXPECT_EQ(CyclesToTime(0, 3 * kGhz), 0);
  // 3.6e9 cycles at 3.6 GHz is exactly one second.
  EXPECT_EQ(CyclesToTime(3'600'000'000LL, 3'600'000 * kKhz), kSecond);
  // Large value: one minute of cycles does not overflow.
  EXPECT_EQ(CyclesToTime(60LL * 3'600'000'000LL, 3'600'000 * kKhz), 60 * kSecond);
}

TEST(Time, TimeToCyclesInvertsCyclesToTime) {
  for (Cycles c : {1LL, 7LL, 100LL, 12345LL, 999999937LL}) {
    for (FreqKhz f : {600'000 * kKhz, 1'000'000 * kKhz, 3'600'000 * kKhz}) {
      const SimTime t = CyclesToTime(c, f);
      const Cycles back = TimeToCycles(t, f);
      // Rounding can lose at most one cycle.
      EXPECT_NEAR(static_cast<double>(back), static_cast<double>(c), 1.0)
          << "c=" << c << " f=" << f;
    }
  }
}

TEST(Time, ConversionHelpers) {
  EXPECT_DOUBLE_EQ(ToSeconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(ToSeconds(250 * kMillisecond), 0.25);
  EXPECT_DOUBLE_EQ(ToGhz(3'600'000 * kKhz), 3.6);
}

TEST(Time, FormatTimePicksSensibleUnits) {
  EXPECT_EQ(FormatTime(500), "500ps");
  EXPECT_EQ(FormatTime(1500), "1.500ns");
  EXPECT_EQ(FormatTime(2 * kMicrosecond), "2.000us");
  EXPECT_EQ(FormatTime(3 * kMillisecond + 500 * kMicrosecond), "3.500ms");
  EXPECT_EQ(FormatTime(2 * kSecond), "2.000s");
  EXPECT_EQ(FormatTime(-2 * kSecond), "-2.000s");
}

// Property: monotonicity of CyclesToTime in both arguments.
class CyclesMonotone : public ::testing::TestWithParam<FreqKhz> {};

TEST_P(CyclesMonotone, MoreCyclesNeverTakeLessTime) {
  const FreqKhz f = GetParam();
  SimTime prev = -1;
  for (Cycles c = 0; c < 10000; c += 37) {
    const SimTime t = CyclesToTime(c, f);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST_P(CyclesMonotone, HigherFrequencyNeverSlower) {
  const FreqKhz f = GetParam();
  const FreqKhz faster = f + 400'000 * kKhz;
  for (Cycles c : {100LL, 10'000LL, 1'000'000LL}) {
    EXPECT_LE(CyclesToTime(c, faster), CyclesToTime(c, f));
  }
}

INSTANTIATE_TEST_SUITE_P(Freqs, CyclesMonotone,
                         ::testing::Values(300'000 * kKhz, 600'000 * kKhz, 1'200'000 * kKhz,
                                           2'400'000 * kKhz, 3'600'000 * kKhz, 4'400'000 * kKhz));

}  // namespace
}  // namespace newtos
