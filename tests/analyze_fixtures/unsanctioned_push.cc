// Fixture: a busy-wait push loop with no [[blocking]] sanction — exactly one
// blocking-push violation. The lookalikes below must NOT fire: a bounded
// retry with a different shape, and a spin that appears only in a comment.
// Never compiled; parsed by analyze_test.

struct Ring {
  bool TryPush(int value);
  bool Push(int value);
};

void SpinForever(Ring& ring) {
  int value = 7;
  while (!ring.TryPush(value)) {
  }
}

// Lookalike: `while (!ring.TryPush(v))` in a comment must not count.
bool SingleAttempt(Ring& ring) {
  int value = 9;
  if (!ring.TryPush(value)) {
    return false;
  }
  return true;
}

void BoundedDrain(Ring& ring) {
  for (int i = 0; i < 4; ++i) {
    if (ring.Push(i)) {
      break;
    }
  }
}
