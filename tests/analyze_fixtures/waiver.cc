// Fixture: two roles share a ring by design. With the matching [[shared]]
// entry the diagnostic still fires, but waived and carrying the reason —
// shared rings are recorded deviations, never silent. Never compiled;
// parsed by analyze_test.

struct Chan {};

class Server {
 public:
  Server(int sim, const char* name);
  Chan* CreateInput(const char* chan, int capacity, int cost);
  static bool Emit(Chan* out, int msg);
};

class MuxServer : public Server {
 public:
  explicit MuxServer(int sim) : Server(sim, "mux") { in_ = CreateInput("shared", 64, 0); }
  Chan* in() { return in_; }

 private:
  Chan* in_ = nullptr;
};

class LeftServer : public Server {
 public:
  explicit LeftServer(int sim) : Server(sim, "left") {}
  void set_out(Chan* out) { out_ = out; }
  void Handle() { Emit(out_, 1); }

 private:
  Chan* out_ = nullptr;
};

class RightServer : public Server {
 public:
  explicit RightServer(int sim) : Server(sim, "right") {}
  void set_out(Chan* out) { out_ = out; }
  void Handle() { Emit(out_, 2); }

 private:
  Chan* out_ = nullptr;
};

void Wire(MuxServer* mux, LeftServer* left, RightServer* right) {
  left->set_out(mux->in());
  right->set_out(mux->in());
}
