// Fixture: two roles emit into one ring with no [[shared]] waiver — exactly
// one multi-producer violation. Never compiled; parsed by analyze_test.

struct Chan {};

class Server {
 public:
  Server(int sim, const char* name);
  Chan* CreateInput(const char* chan, int capacity, int cost);
  static bool Emit(Chan* out, int msg);
};

class RxServer : public Server {
 public:
  explicit RxServer(int sim) : Server(sim, "rx") { in_ = CreateInput("data", 64, 0); }
  Chan* in() { return in_; }

 private:
  Chan* in_ = nullptr;
};

class AlphaServer : public Server {
 public:
  explicit AlphaServer(int sim) : Server(sim, "alpha") {}
  void set_out(Chan* out) { out_ = out; }
  void Handle() { Emit(out_, 1); }

 private:
  Chan* out_ = nullptr;
};

class BetaServer : public Server {
 public:
  explicit BetaServer(int sim) : Server(sim, "beta") {}
  void set_out(Chan* out) { out_ = out; }
  void Handle() { Emit(out_, 2); }

 private:
  Chan* out_ = nullptr;
};

void Wire(RxServer* rx, AlphaServer* alpha, BetaServer* beta) {
  alpha->set_out(rx->in());
  beta->set_out(rx->in());
}
