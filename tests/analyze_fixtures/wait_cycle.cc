// Fixture: two servers cross-wired into each other's only input. With both
// rings sanctioned as blocking-wait sites, the wait graph closes a
// ping -> pong -> ping cycle — exactly one wait-cycle diagnostic.
// Never compiled; parsed by analyze_test.

struct Chan {};

class Server {
 public:
  Server(int sim, const char* name);
  Chan* CreateInput(const char* chan, int capacity, int cost);
  static bool Emit(Chan* out, int msg);
};

class PingServer : public Server {
 public:
  explicit PingServer(int sim) : Server(sim, "ping") { in_ = CreateInput("in", 8, 0); }
  Chan* in() { return in_; }
  void set_out(Chan* out) { out_ = out; }
  void Handle() { Emit(out_, 1); }

 private:
  Chan* in_ = nullptr;
  Chan* out_ = nullptr;
};

class PongServer : public Server {
 public:
  explicit PongServer(int sim) : Server(sim, "pong") { in_ = CreateInput("in", 8, 0); }
  Chan* in() { return in_; }
  void set_out(Chan* out) { out_ = out; }
  void Handle() { Emit(out_, 1); }

 private:
  Chan* in_ = nullptr;
  Chan* out_ = nullptr;
};

void Wire(PingServer* ping, PongServer* pong) {
  ping->set_out(pong->in());
  pong->set_out(ping->in());
}
