// Fixture: a strictly-SPSC two-hop chain (source -> mid -> sink). Nothing to
// waive, nothing blocks: zero diagnostics, and the canonical wiring text is
// asserted verbatim. Never compiled; parsed by analyze_test.

struct Chan {};

class Server {
 public:
  Server(int sim, const char* name);
  Chan* CreateInput(const char* chan, int capacity, int cost);
  static bool Emit(Chan* out, int msg);
};

class SinkServer : public Server {
 public:
  explicit SinkServer(int sim) : Server(sim, "sink") { in_ = CreateInput("in", 32, 0); }
  Chan* in() { return in_; }

 private:
  Chan* in_ = nullptr;
};

class MidServer : public Server {
 public:
  explicit MidServer(int sim) : Server(sim, "mid") { in_ = CreateInput("in", 32, 0); }
  Chan* in() { return in_; }
  void set_out(Chan* out) { out_ = out; }
  void Handle() { Emit(out_, 1); }

 private:
  Chan* in_ = nullptr;
  Chan* out_ = nullptr;
};

class SourceServer : public Server {
 public:
  explicit SourceServer(int sim) : Server(sim, "source") {}
  void set_out(Chan* out) { out_ = out; }
  void Handle() { Emit(out_, 1); }

 private:
  Chan* out_ = nullptr;
};

void Wire(SourceServer* source, MidServer* mid, SinkServer* sink) {
  source->set_out(mid->in());
  mid->set_out(sink->in());
}
