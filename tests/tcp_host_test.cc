// TcpHost demux/listen/accept tests: two hosts joined by a zero-loss wire.

#include "src/net/tcp_host.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/sim/simulation.h"

namespace newtos {
namespace {

class TcpHostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = std::make_unique<TcpHost>(&sim_, Ipv4(10, 0, 0, 1),
                                   [this](PacketPtr p) { Wire(std::move(p), b_.get()); });
    b_ = std::make_unique<TcpHost>(&sim_, Ipv4(10, 0, 0, 2),
                                   [this](PacketPtr p) { Wire(std::move(p), a_.get()); });
  }

  void Wire(PacketPtr p, TcpHost* dst) {
    sim_.Schedule(10 * kMicrosecond, [p = std::move(p), dst] { dst->OnPacket(p); });
  }

  Simulation sim_;
  std::unique_ptr<TcpHost> a_;
  std::unique_ptr<TcpHost> b_;
};

TEST_F(TcpHostTest, ListenAcceptsIncomingSyn) {
  int accepted = 0;
  TcpHost::AppHooks hooks;
  hooks.on_established = [&](TcpConnection*) { ++accepted; };
  ASSERT_TRUE(b_->Listen(80, hooks));

  TcpConnection* c = a_->Connect(b_->addr(), 80, {});
  ASSERT_NE(c, nullptr);
  sim_.RunFor(10 * kMillisecond);
  EXPECT_EQ(accepted, 1);
  EXPECT_EQ(c->state(), TcpState::kEstablished);
  EXPECT_EQ(b_->connection_count(), 1u);
}

TEST_F(TcpHostTest, DoubleListenRejected) {
  EXPECT_TRUE(b_->Listen(80, {}));
  EXPECT_FALSE(b_->Listen(80, {}));
  EXPECT_TRUE(b_->Listen(81, {}));
}

TEST_F(TcpHostTest, SynToUnboundPortIsDropped) {
  TcpConnection* c = a_->Connect(b_->addr(), 9999, {});
  sim_.RunFor(50 * kMillisecond);
  EXPECT_NE(c->state(), TcpState::kEstablished);
  EXPECT_GT(b_->dropped_no_match(), 0u);
}

TEST_F(TcpHostTest, EphemeralPortsAreDistinct) {
  b_->Listen(80, {});
  TcpConnection* c1 = a_->Connect(b_->addr(), 80, {});
  TcpConnection* c2 = a_->Connect(b_->addr(), 80, {});
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);
  EXPECT_NE(c1->key().src_port, c2->key().src_port);
  sim_.RunFor(10 * kMillisecond);
  EXPECT_EQ(b_->connection_count(), 2u);
}

TEST_F(TcpHostTest, DataFlowsToTheRightConnection) {
  uint64_t got1 = 0, got2 = 0;
  TcpHost::AppHooks hooks;
  hooks.on_data = [&](TcpConnection* c, uint32_t bytes) {
    // Demux check: tag by destination port of the peer's ephemeral port.
    if (c->key().dst_port % 2 == 0) {
      got1 += bytes;
    } else {
      got2 += bytes;
    }
  };
  b_->Listen(80, hooks);
  TcpConnection* c1 = a_->Connect(b_->addr(), 80, {});
  TcpConnection* c2 = a_->Connect(b_->addr(), 80, {});
  sim_.RunFor(10 * kMillisecond);
  c1->Send(1000);
  c2->Send(3000);
  sim_.RunFor(100 * kMillisecond);
  EXPECT_EQ(got1 + got2, 4000u);
  EXPECT_TRUE((got1 == 1000 && got2 == 3000) || (got1 == 3000 && got2 == 1000));
}

TEST_F(TcpHostTest, ReapClosedRemovesDeadConnections) {
  b_->Listen(80, {});
  TcpConnection* c = a_->Connect(b_->addr(), 80, {});
  sim_.RunFor(10 * kMillisecond);
  ASSERT_EQ(c->state(), TcpState::kEstablished);
  c->CloseSend();
  sim_.RunFor(5 * kMillisecond);
  // Close from the passive side too.
  for (TcpConnection* bc : b_->Connections()) {
    bc->CloseSend();
  }
  sim_.RunFor(1 * kSecond);
  EXPECT_GT(a_->ReapClosed(), 0u);
  EXPECT_GT(b_->ReapClosed(), 0u);
  EXPECT_EQ(a_->connection_count(), 0u);
  EXPECT_EQ(b_->connection_count(), 0u);
}

TEST_F(TcpHostTest, OnClosedHookFires) {
  int closed = 0;
  TcpHost::AppHooks hooks;
  hooks.on_closed = [&](TcpConnection*) { ++closed; };
  b_->Listen(80, hooks);
  TcpConnection* c = a_->Connect(b_->addr(), 80, {});
  sim_.RunFor(10 * kMillisecond);
  c->Abort();
  sim_.RunFor(10 * kMillisecond);
  EXPECT_EQ(closed, 1);
}

TEST_F(TcpHostTest, ManyConcurrentConnections) {
  uint64_t total = 0;
  TcpHost::AppHooks hooks;
  hooks.on_data = [&](TcpConnection*, uint32_t bytes) { total += bytes; };
  b_->Listen(80, hooks);
  std::vector<TcpConnection*> conns;
  for (int i = 0; i < 50; ++i) {
    conns.push_back(a_->Connect(b_->addr(), 80, {}));
  }
  sim_.RunFor(50 * kMillisecond);
  for (TcpConnection* c : conns) {
    ASSERT_EQ(c->state(), TcpState::kEstablished);
    c->Send(10'000);
  }
  sim_.RunFor(2 * kSecond);
  EXPECT_EQ(total, 50u * 10'000u);
}

}  // namespace
}  // namespace newtos
