// Real-thread stress harness for the SPSC fast path, built to run under
// ThreadSanitizer (cmake --preset tsan). The simulator never needs threads;
// the ring does — it is the paper's artifact, used from genuinely concurrent
// code (src/host, bench/tab3). These tests put real producer/consumer
// threads on it so TSan can see the release/acquire protocol end to end:
// any missing fence, any torn slot access, any misuse of the cached indices
// shows up as a data-race report here, not as a heisenbug in a bench.
//
// The same binary is part of the default suite too (the assertions hold
// with or without TSan); the tsan CI job just runs it with the sanitizer
// underneath.

#include "src/chan/spsc_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/runtime/fig2_ref.h"
#include "src/runtime/live_stack.h"

namespace newtos {
namespace {

TEST(SpscTsan, TwoThreadFifoCountAndOrder) {
  constexpr uint64_t kMessages = 200'000;
  SpscRing<uint64_t> ring(1024);
  std::thread producer([&ring] {
    for (uint64_t i = 0; i < kMessages; ++i) {
      while (!ring.TryPush(i)) {
      }
    }
  });
  uint64_t expected = 0;
  while (expected < kMessages) {
    if (auto v = ring.TryPop()) {
      ASSERT_EQ(*v, expected);  // strict FIFO, nothing lost, nothing torn
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.EmptyConsumer());
}

TEST(SpscTsan, MoveOnlyPayloadsCrossIntact) {
  // unique_ptr payloads: a torn or doubled slot hand-off would double-free
  // or leak, which ASan/TSan runs turn into hard failures.
  constexpr int kMessages = 50'000;
  SpscRing<std::unique_ptr<int>> ring(256);
  std::thread producer([&ring] {
    for (int i = 0; i < kMessages; ++i) {
      auto p = std::make_unique<int>(i);
      // TryEmplace checks for space before forwarding, so a failed attempt
      // leaves `p` intact (TryPush would consume it into the by-value param).
      while (!ring.TryEmplace(std::move(p))) {
      }
    }
  });
  long long sum = 0;
  int received = 0;
  while (received < kMessages) {
    if (auto v = ring.TryPop()) {
      sum += **v;
      ++received;
    }
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(kMessages - 1) * kMessages / 2);
}

TEST(SpscTsan, FrontPeeksSafelyWhileProducing) {
  constexpr uint64_t kMessages = 100'000;
  SpscRing<uint64_t> ring(64);
  std::thread producer([&ring] {
    for (uint64_t i = 0; i < kMessages; ++i) {
      while (!ring.TryEmplace(i)) {
      }
    }
  });
  uint64_t popped = 0;
  while (popped < kMessages) {
    if (const uint64_t* front = ring.Front()) {
      EXPECT_EQ(*front, popped);  // peek then pop must agree
      auto v = ring.TryPop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, popped);
      ++popped;
    }
  }
  producer.join();
}

TEST(SpscTsan, PingPongBouncesEveryMessage) {
  // Two rings, two threads, each thread producer of one ring and consumer of
  // the other — the steady-state topology of the pipelined stack.
  constexpr uint64_t kRounds = 100'000;
  SpscRing<uint64_t> there(128);
  SpscRing<uint64_t> back(128);
  std::thread echo([&there, &back] {
    uint64_t done = 0;
    while (done < kRounds) {
      if (auto v = there.TryPop()) {
        while (!back.TryPush(*v + 1)) {
        }
        ++done;
      }
    }
  });
  uint64_t in_flight = 0;
  uint64_t next_send = 0;
  uint64_t next_recv = 0;
  while (next_recv < kRounds) {
    if (next_send < kRounds && in_flight < 64 && there.TryPush(next_send)) {
      ++next_send;
      ++in_flight;
    }
    if (auto v = back.TryPop()) {
      EXPECT_EQ(*v, next_recv + 1);
      ++next_recv;
      --in_flight;
    }
  }
  echo.join();
}

#if NEWTOS_CHECKERS

TEST(SpscTsan, SecondProducerThreadIsFlagged) {
  // Identity violation without an actual data race: the pushes are
  // serialized through the release/acquire flag, so TSan stays quiet — but
  // the SPSC contract says ONE producer thread for the ring's lifetime, and
  // the debug check counts the imposter. Both threads stay alive until the
  // end so their ids (and thus identity tokens) cannot be recycled.
  SpscRing<int> ring(16);
  std::atomic<int> stage{0};
  std::thread owner([&ring, &stage] {
    ring.TryPush(1);
    stage.store(1, std::memory_order_release);
    while (stage.load(std::memory_order_acquire) < 2) {
    }
  });
  std::thread imposter([&ring, &stage] {
    while (stage.load(std::memory_order_acquire) < 1) {
    }
    ring.TryPush(2);  // deliberate second producer
    stage.store(2, std::memory_order_release);
  });
  owner.join();
  imposter.join();
  EXPECT_GT(ring.check_violations(), 0u);
}

TEST(SpscTsan, SecondConsumerThreadIsFlagged) {
  SpscRing<int> ring(16);
  ring.TryPush(1);
  ring.TryPush(2);
  std::atomic<int> stage{0};
  std::thread owner([&ring, &stage] {
    ring.TryPop();
    stage.store(1, std::memory_order_release);
    while (stage.load(std::memory_order_acquire) < 2) {
    }
  });
  std::thread imposter([&ring, &stage] {
    while (stage.load(std::memory_order_acquire) < 1) {
    }
    ring.TryPop();  // deliberate second consumer
    stage.store(2, std::memory_order_release);
  });
  owner.join();
  imposter.join();
  EXPECT_GT(ring.check_violations(), 0u);
}

TEST(SpscTsan, ResetCheckOwnersAllowsHandOff) {
  // A legitimate phase change (fill single-threaded, then hand the consumer
  // side to a worker) resets the owners at the barrier.
  SpscRing<int> ring(16);
  ring.TryPush(1);
  ring.ResetCheckOwners();
  std::thread worker([&ring] {
    EXPECT_EQ(*ring.TryPop(), 1);
    ring.TryPush(2);
  });
  worker.join();
  EXPECT_EQ(ring.check_violations(), 0u);
}

#endif  // NEWTOS_CHECKERS

// --- Live mini-stack under TSan ---
//
// The full concurrency surface of the runtime backend in one test: three
// real server threads (app -> tcp -> peer, acks back) exchanging RtMsgs
// over ThreadChannels, with park/unpark (IdleGate's fence protocol), window
// flow control, backpressure, and the quiesce shutdown. Under the tsan
// preset this is the proof that the whole live message path — not just the
// bare ring — is data-race-free.

TEST(SpscTsan, LiveMiniStackTransfersRaceFree) {
  LiveStackConfig cfg;
  cfg.mini = true;
  cfg.transfer_bytes = 512 * 1024;
  cfg.ring_capacity = 64;  // small rings: force backpressure + parking paths
  const LiveStackResult r = RunLiveFig2(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.conservation_ok);
  EXPECT_EQ(r.delivered, cfg.transfer_bytes);
  EXPECT_EQ(r.payload_errors, 0u);
  EXPECT_EQ(r.TotalImposters(), 0u);
}

TEST(SpscTsan, LiveMiniStackDigestMatchesDes) {
  LiveStackConfig cfg;
  cfg.mini = true;
  cfg.transfer_bytes = 256 * 1024;
  const LiveStackResult live = RunLiveFig2(cfg);
  ASSERT_TRUE(live.completed);
  const Fig2DesResult des = RunFig2Des(cfg.transfer_bytes);
  ASSERT_TRUE(des.completed);
  ASSERT_EQ(des.retransmits, 0u);
  EXPECT_EQ(live.digest, des.digest);
  EXPECT_EQ(live.chunks, des.chunks);
}

}  // namespace
}  // namespace newtos
