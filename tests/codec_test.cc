#include "src/net/codec.h"

#include <gtest/gtest.h>

#include <tuple>

#include "src/net/packet.h"

namespace newtos {
namespace {

PacketPtr MakeTcpPacket(uint32_t payload) {
  PacketPtr p = MakePacket();
  p->eth.src = {0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
  p->eth.dst = {0x02, 0x00, 0x00, 0x00, 0x00, 0x02};
  p->ip.proto = IpProto::kTcp;
  p->ip.src = Ipv4(10, 0, 0, 1);
  p->ip.dst = Ipv4(10, 0, 0, 2);
  p->ip.ttl = 63;
  p->tcp.src_port = 49152;
  p->tcp.dst_port = 80;
  p->tcp.seq = 0xdeadbeef;
  p->tcp.ack = 0x01020304;
  p->tcp.flags = kTcpAck | kTcpPsh;
  p->tcp.window = 256 * 1024;
  p->payload_bytes = payload;
  return p;
}

TEST(Codec, TcpRoundTripPreservesHeaders) {
  PacketPtr p = MakeTcpPacket(777);
  auto frame = SerializePacket(*p);
  EXPECT_EQ(frame.size(), p->FrameBytes());
  auto parsed = ParsePacket(frame);
  ASSERT_TRUE(parsed.has_value());
  const Packet& q = parsed->packet;
  EXPECT_EQ(q.eth.src, p->eth.src);
  EXPECT_EQ(q.eth.dst, p->eth.dst);
  EXPECT_EQ(q.ip.src, p->ip.src);
  EXPECT_EQ(q.ip.dst, p->ip.dst);
  EXPECT_EQ(q.ip.ttl, p->ip.ttl);
  EXPECT_EQ(q.ip.proto, IpProto::kTcp);
  EXPECT_EQ(q.tcp.src_port, p->tcp.src_port);
  EXPECT_EQ(q.tcp.dst_port, p->tcp.dst_port);
  EXPECT_EQ(q.tcp.seq, p->tcp.seq);
  EXPECT_EQ(q.tcp.ack, p->tcp.ack);
  EXPECT_EQ(q.tcp.flags, p->tcp.flags);
  EXPECT_EQ(q.tcp.window, p->tcp.window);  // multiple of 256: exact
  EXPECT_EQ(q.payload_bytes, p->payload_bytes);
}

TEST(Codec, ChecksumsValidate) {
  auto frame = SerializePacket(*MakeTcpPacket(1000));
  auto parsed = ParsePacket(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->ip_checksum_ok);
  EXPECT_TRUE(parsed->l4_checksum_ok);
}

TEST(Codec, PayloadCorruptionBreaksL4Checksum) {
  auto frame = SerializePacket(*MakeTcpPacket(100));
  frame[frame.size() - 10] ^= 0xff;
  auto parsed = ParsePacket(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->ip_checksum_ok);
  EXPECT_FALSE(parsed->l4_checksum_ok);
}

TEST(Codec, IpHeaderCorruptionBreaksIpChecksum) {
  auto frame = SerializePacket(*MakeTcpPacket(0));
  frame[kEthHeaderBytes + 8] ^= 0x01;  // TTL byte
  auto parsed = ParsePacket(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->ip_checksum_ok);
}

TEST(Codec, UdpRoundTrip) {
  PacketPtr p = MakePacket();
  p->ip.proto = IpProto::kUdp;
  p->ip.src = Ipv4(192, 168, 1, 1);
  p->ip.dst = Ipv4(192, 168, 1, 2);
  p->udp.src_port = 1234;
  p->udp.dst_port = 5678;
  p->payload_bytes = 512;
  auto frame = SerializePacket(*p);
  auto parsed = ParsePacket(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->packet.ip.proto, IpProto::kUdp);
  EXPECT_EQ(parsed->packet.udp.src_port, 1234);
  EXPECT_EQ(parsed->packet.udp.dst_port, 5678);
  EXPECT_EQ(parsed->packet.payload_bytes, 512u);
  EXPECT_TRUE(parsed->l4_checksum_ok);
}

TEST(Codec, SackOptionRoundTrips) {
  PacketPtr p = MakeTcpPacket(100);
  p->tcp.n_sack = 2;
  p->tcp.sack[0] = {1000, 2460};
  p->tcp.sack[1] = {5000, 6460};
  auto frame = SerializePacket(*p);
  EXPECT_EQ(frame.size(), p->FrameBytes());
  auto parsed = ParsePacket(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->l4_checksum_ok);
  EXPECT_EQ(parsed->packet.tcp.n_sack, 2);
  EXPECT_EQ(parsed->packet.tcp.sack[0], (SackBlock{1000, 2460}));
  EXPECT_EQ(parsed->packet.tcp.sack[1], (SackBlock{5000, 6460}));
  EXPECT_EQ(parsed->packet.payload_bytes, 100u);
}

TEST(Codec, SackHeaderSizesArePadded) {
  TcpHeader h;
  EXPECT_EQ(h.HeaderBytes(), 20u);
  h.n_sack = 1;  // 2 + 8 = 10 -> padded to 12 -> 32 bytes total
  EXPECT_EQ(h.HeaderBytes(), 32u);
  h.n_sack = 3;  // 2 + 24 = 26 -> padded to 28 -> 48 bytes total
  EXPECT_EQ(h.HeaderBytes(), 48u);
}

TEST(Codec, MalformedOptionLengthRejected) {
  PacketPtr p = MakeTcpPacket(0);
  p->tcp.n_sack = 1;
  p->tcp.sack[0] = {1, 2};
  auto frame = SerializePacket(*p);
  frame[kEthHeaderBytes + kIpv4HeaderBytes + 21] = 0;  // option length 0
  EXPECT_FALSE(ParsePacket(frame).has_value());
}

TEST(Codec, TruncatedFrameRejected) {
  auto frame = SerializePacket(*MakeTcpPacket(100));
  frame.resize(kEthHeaderBytes + 10);
  EXPECT_FALSE(ParsePacket(frame).has_value());
}

TEST(Codec, NonIpv4EtherTypeRejected) {
  auto frame = SerializePacket(*MakeTcpPacket(0));
  frame[12] = 0x86;  // 0x86dd = IPv6
  frame[13] = 0xdd;
  EXPECT_FALSE(ParsePacket(frame).has_value());
}

TEST(Codec, UnknownIpProtoRejected) {
  auto frame = SerializePacket(*MakeTcpPacket(0));
  frame[kEthHeaderBytes + 9] = 47;  // GRE
  EXPECT_FALSE(ParsePacket(frame).has_value());
}

// Property sweep: round-trip across protocols and payload sizes.
class CodecRoundTrip
    : public ::testing::TestWithParam<std::tuple<IpProto, uint32_t>> {};

TEST_P(CodecRoundTrip, PayloadLengthAndChecksumsSurvive) {
  auto [proto, payload] = GetParam();
  PacketPtr p = MakePacket();
  p->ip.proto = proto;
  p->ip.src = Ipv4(10, 1, 2, 3);
  p->ip.dst = Ipv4(10, 4, 5, 6);
  p->tcp.src_port = 1000;
  p->tcp.dst_port = 2000;
  p->udp.src_port = 1000;
  p->udp.dst_port = 2000;
  p->payload_bytes = payload;
  auto frame = SerializePacket(*p);
  auto parsed = ParsePacket(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->packet.payload_bytes, payload);
  EXPECT_TRUE(parsed->ip_checksum_ok);
  EXPECT_TRUE(parsed->l4_checksum_ok);
  EXPECT_EQ(parsed->packet.FrameBytes(), frame.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CodecRoundTrip,
    ::testing::Combine(::testing::Values(IpProto::kTcp, IpProto::kUdp),
                       ::testing::Values(0u, 1u, 2u, 63u, 64u, 512u, 1460u, 9000u)));

}  // namespace
}  // namespace newtos
