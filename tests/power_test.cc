#include "src/hw/power.h"

#include <gtest/gtest.h>

#include "src/hw/operating_point.h"

namespace newtos {
namespace {

TEST(PowerModel, BusyEqualsPollingAndExceedsHalted) {
  PowerModel pm;
  const OperatingPoint op{3'600'000 * kKhz, 1.25};
  const double busy = pm.CoreWatts(op, CoreActivity::kBusy);
  const double poll = pm.CoreWatts(op, CoreActivity::kPolling);
  const double halt = pm.CoreWatts(op, CoreActivity::kHalted);
  EXPECT_DOUBLE_EQ(busy, poll);  // spinning draws full dynamic power
  EXPECT_LT(halt, busy / 4.0);
}

TEST(PowerModel, PowerGrowsWithFrequencyAlongTheTable) {
  PowerModel pm;
  const auto table = BigCoreOperatingPoints();
  double prev = 1e9;
  for (const OperatingPoint& op : table) {  // descending frequency
    const double w = pm.PeakWatts(op);
    EXPECT_LT(w, prev) << "f=" << ToGhz(op.freq);
    prev = w;
  }
}

TEST(PowerModel, VoltageScalingIsSuperlinear) {
  // Halving frequency (with its lower voltage) must cut dynamic power by
  // far more than half — the physics behind the whole paper.
  PowerModel pm;
  const auto table = BigCoreOperatingPoints();
  const OperatingPoint& fast = PickOperatingPoint(table, 3'600'000 * kKhz);
  const OperatingPoint& half = PickOperatingPoint(table, 1'600'000 * kKhz);
  const double dyn_fast = pm.PeakWatts(fast) - pm.params().static_watts;
  const double dyn_half = pm.PeakWatts(half) - pm.params().static_watts;
  EXPECT_LT(dyn_half, 0.4 * dyn_fast);
}

TEST(PowerModel, WimpyCoreCheaperThanBigAtSameFrequency) {
  PowerModel pm;
  const auto big = BigCoreOperatingPoints();
  const auto wimpy = WimpyCoreOperatingPoints();
  const double big_w = pm.PeakWatts(PickOperatingPoint(big, 1'600'000 * kKhz));
  const double wimpy_w = pm.PeakWatts(PickOperatingPoint(wimpy, 1'600'000 * kKhz));
  EXPECT_LE(wimpy_w, big_w);
}

TEST(PickOperatingPoint, SnapsDownward) {
  const auto table = BigCoreOperatingPoints();
  EXPECT_EQ(PickOperatingPoint(table, 3'700'000 * kKhz).freq, 3'600'000 * kKhz);
  EXPECT_EQ(PickOperatingPoint(table, 3'600'000 * kKhz).freq, 3'600'000 * kKhz);
  EXPECT_EQ(PickOperatingPoint(table, 3'599'999 * kKhz).freq, 3'200'000 * kKhz);
  EXPECT_EQ(PickOperatingPoint(table, 1 * kKhz).freq, table.back().freq);
}

TEST(EnergyMeter, IntegratesPiecewiseConstantPower) {
  EnergyMeter m(0);
  m.SetPower(10.0, 0);
  EXPECT_DOUBLE_EQ(m.JoulesAt(kSecond), 10.0);
  m.SetPower(2.0, kSecond);
  EXPECT_DOUBLE_EQ(m.JoulesAt(3 * kSecond), 10.0 + 4.0);
}

TEST(EnergyMeter, RepeatedSetAtSameInstant) {
  EnergyMeter m(0);
  m.SetPower(5.0, 0);
  m.SetPower(7.0, 0);  // overrides before any time passes
  EXPECT_DOUBLE_EQ(m.JoulesAt(kSecond), 7.0);
}

TEST(EnergyMeter, ResetDropsHistoryKeepsLevel) {
  EnergyMeter m(0);
  m.SetPower(10.0, 0);
  m.ResetAt(kSecond);
  EXPECT_DOUBLE_EQ(m.JoulesAt(kSecond), 0.0);
  EXPECT_DOUBLE_EQ(m.JoulesAt(2 * kSecond), 10.0);
  EXPECT_DOUBLE_EQ(m.current_watts(), 10.0);
}

TEST(EnergyMeter, SubSecondResolution) {
  EnergyMeter m(0);
  m.SetPower(8.0, 0);
  EXPECT_NEAR(m.JoulesAt(250 * kMillisecond), 2.0, 1e-9);
}

}  // namespace
}  // namespace newtos
