#include "src/core/turbo.h"

#include <gtest/gtest.h>

#include "src/sim/simulation.h"

namespace newtos {
namespace {

class TurboTest : public ::testing::Test {
 protected:
  void Build(double budget) {
    Machine::Params p;
    p.num_cores = 4;
    p.chip_power_budget_watts = budget;
    machine_ = std::make_unique<Machine>(&sim_, "m", p);
  }
  Simulation sim_;
  std::unique_ptr<Machine> machine_;
};

TEST_F(TurboTest, ProvisionedWattsSumsPeakDraws) {
  Build(100.0);
  TurboGovernor gov(machine_.get());
  const PowerModel& pm = machine_->power_model();
  double expect = pm.uncore_watts();
  for (int i = 0; i < 4; ++i) {
    expect += pm.PeakWatts(machine_->core(i)->operating_point());
  }
  EXPECT_DOUBLE_EQ(gov.ProvisionedWatts(), expect);
}

TEST_F(TurboTest, GenerousBudgetGrantsTopTurbo) {
  Build(500.0);
  TurboGovernor gov(machine_.get());
  gov.Apply({{machine_->core(1), 3'600'000 * kKhz}}, {machine_->core(0)});
  EXPECT_EQ(machine_->core(0)->frequency(), 4'400'000 * kKhz);
}

TEST_F(TurboTest, TightBudgetLimitsBoost) {
  Build(36.0);
  TurboGovernor gov(machine_.get());
  // Fix three system cores fast; the app core gets whatever is left.
  gov.Apply({{machine_->core(1), 3'600'000 * kKhz},
             {machine_->core(2), 3'600'000 * kKhz},
             {machine_->core(3), 3'600'000 * kKhz}},
            {machine_->core(0)});
  const FreqKhz app_with_fast_stack = machine_->core(0)->frequency();

  // Slow the system cores: the freed watts become app turbo headroom.
  gov.Apply({{machine_->core(1), 1'200'000 * kKhz},
             {machine_->core(2), 1'200'000 * kKhz},
             {machine_->core(3), 1'200'000 * kKhz}},
            {machine_->core(0)});
  const FreqKhz app_with_slow_stack = machine_->core(0)->frequency();

  EXPECT_GT(app_with_slow_stack, app_with_fast_stack)
      << "slowing the system cores must boost the application core";
}

TEST_F(TurboTest, ResultStaysWithinBudgetWhenFeasible) {
  Build(40.0);
  TurboGovernor gov(machine_.get());
  const double provisioned = gov.Apply({{machine_->core(1), 1'200'000 * kKhz},
                                        {machine_->core(2), 1'200'000 * kKhz},
                                        {machine_->core(3), 1'200'000 * kKhz}},
                                       {machine_->core(0)});
  EXPECT_LE(provisioned, 40.0 + 1e-9);
}

TEST_F(TurboTest, MultipleBoostCoresGrantedInPriorityOrder) {
  Build(45.0);
  TurboGovernor gov(machine_.get());
  gov.Apply({{machine_->core(2), 1'200'000 * kKhz}, {machine_->core(3), 1'200'000 * kKhz}},
            {machine_->core(0), machine_->core(1)});
  // The first boost core gets at least as much frequency as the second.
  EXPECT_GE(machine_->core(0)->frequency(), machine_->core(1)->frequency());
}

TEST_F(TurboTest, InfeasibleBudgetFallsBackToFloor) {
  Build(5.0);  // below even the uncore draw
  TurboGovernor gov(machine_.get());
  gov.Apply({}, {machine_->core(0), machine_->core(1), machine_->core(2), machine_->core(3)});
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(machine_->core(i)->frequency(), machine_->core(i)->table().back().freq);
  }
}

TEST_F(TurboTest, ExplicitBudgetOverridesMachineDefault) {
  Build(500.0);
  TurboGovernor gov(machine_.get(), 36.0);
  EXPECT_DOUBLE_EQ(gov.budget_watts(), 36.0);
  gov.Apply({{machine_->core(1), 3'600'000 * kKhz},
             {machine_->core(2), 3'600'000 * kKhz},
             {machine_->core(3), 3'600'000 * kKhz}},
            {machine_->core(0)});
  EXPECT_LT(machine_->core(0)->frequency(), 4'400'000 * kKhz);
}

}  // namespace
}  // namespace newtos
