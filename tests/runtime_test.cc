// Tests for the real-thread runtime backend (src/runtime).
//
// The headline assertion is the ISSUE's acceptance criterion: the fig2-small
// bulk transfer produces a byte-identical application stream — equal
// delivered bytes, equal chunk count, equal StreamIntegrityChecker digest —
// in the DES and live backends. The digests are computed dynamically in the
// same binary (no hardcoded goldens): the DES run is the oracle, verified
// loss-free via its retransmit tripwire, and the live run must match it.
// Counters and timings legitimately differ; bytes may not.

#include "src/runtime/live_stack.h"

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <sstream>
#include <thread>

#include "src/check/channel_checker.h"
#include "src/host/affinity.h"
#include "src/runtime/clock.h"
#include "src/runtime/engine.h"
#include "src/runtime/fig2_ref.h"
#include "src/runtime/thread_channel.h"

namespace newtos {
namespace {

// fig2-small: big enough for hundreds of segments and real window cycling,
// small enough to run in milliseconds on a 1-core CI container.
constexpr uint64_t kTransfer = 1 << 20;  // 1 MiB

// --- Engine: spawn / pin / fallback ---

TEST(RuntimeEngine, SpawnsRunsAndJoins) {
  RuntimeEngine engine;
  std::atomic<int> ran{0};
  engine.Add("a", -1, [&ran](ServerContext&) { ran.fetch_add(1); });
  engine.Add("b", -1, [&ran](ServerContext&) { ran.fetch_add(1); });
  engine.Start();
  engine.Join();
  EXPECT_EQ(ran.load(), 2);
  const auto stats = engine.Stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "a");
  EXPECT_FALSE(stats[0].pinned);  // pinning was not requested
}

TEST(RuntimeEngine, PinsWhenCpuExistsFallsBackWhenNot) {
  const int ncpu = AvailableCpuCount();
  RuntimeEngine engine;
  engine.Add("fits", 0, [](ServerContext&) {});
  // A CPU index beyond the host's range must degrade to unpinned, not fail.
  engine.Add("beyond", ncpu + 7, [](ServerContext&) {});
  engine.Start();
  engine.Join();
  const auto stats = engine.Stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].requested_cpu, 0);
  EXPECT_TRUE(stats[0].pinned);  // cpu 0 always exists
  EXPECT_EQ(stats[1].requested_cpu, ncpu + 7);
  EXPECT_FALSE(stats[1].pinned);
}

TEST(RuntimeEngine, RequestStopWakesParkedServer) {
  RuntimeEngine engine;  // default kHaltWhenIdle: the body will park
  engine.Add("sleeper", -1, [](ServerContext& ctx) {
    while (!ctx.StopRequested()) {
      ctx.Idle(false, [] { return false; });
    }
  });
  engine.Start();
  // Give the thread time to burn its spin budget and park.
  SleepNs(20'000'000);
  engine.RequestStop();
  engine.Join();  // would hang forever if the gate lost the wake
  const auto stats = engine.Stats();
  EXPECT_GT(stats[0].parks, 0u);
}

TEST(RuntimePoll, PollAlwaysNeverParks) {
  RuntimePollPolicy poll;
  poll.mode = PollMode::kPollAlways;
  RuntimeEngine engine(poll);
  engine.Add("spinner", -1, [](ServerContext& ctx) {
    for (int i = 0; i < 100000; ++i) {
      ctx.Idle(false, [] { return false; });
    }
  });
  engine.Start();
  engine.Join();
  EXPECT_EQ(engine.Stats()[0].parks, 0u);
}

// --- ThreadChannel ---

TEST(ThreadChannel, CountsAndNotifiesAcrossThreads) {
  ThreadChannel<int> chan("t", 64);
  IdleGate consumer_gate;
  chan.BindConsumerGate(&consumer_gate);
  constexpr int kN = 100000;
  std::atomic<long long> sum{0};
  std::thread consumer([&] {
    int got = 0;
    while (got < kN) {
      if (std::optional<int> v = chan.TryPop()) {
        sum.fetch_add(*v, std::memory_order_relaxed);
        ++got;
      } else {
        const uint32_t e = consumer_gate.PrepareWait();
        if (chan.EmptyConsumer()) {
          consumer_gate.Wait(e);
        } else {
          consumer_gate.CancelWait();
        }
      }
    }
  });
  for (int i = 1; i <= kN;) {
    if (chan.TryPush(i)) {
      ++i;
    }
  }
  consumer.join();
  EXPECT_EQ(sum.load(), static_cast<long long>(kN) * (kN + 1) / 2);
  EXPECT_EQ(chan.pushes(), static_cast<uint64_t>(kN));
  EXPECT_EQ(chan.pops(), static_cast<uint64_t>(kN));
  EXPECT_EQ(chan.Residue(), 0u);
  EXPECT_EQ(chan.imposters(), 0u);
}

// --- The live stack ---

TEST(LiveStack, QuiesceDrainJoinLosesNoMessages) {
  LiveStackConfig cfg;
  cfg.transfer_bytes = kTransfer;
  const LiveStackResult r = RunLiveFig2(cfg);
  ASSERT_TRUE(r.completed) << "live transfer did not finish before the deadline";
  EXPECT_TRUE(r.conservation_ok);
  for (const LiveRingStats& ring : r.rings) {
    EXPECT_EQ(ring.pushes, ring.pops) << "ring " << ring.name;
    EXPECT_EQ(ring.residue, 0u) << "ring " << ring.name;
  }
  // Every byte arrived and every byte matched the deterministic pattern.
  EXPECT_EQ(r.delivered, kTransfer);
  EXPECT_EQ(r.payload_errors, 0u);
  // The watchdog exchanged real heartbeat traffic with every server.
  EXPECT_GT(r.heartbeat_rounds, 0u);
  // Per-segment latency was measured end to end.
  EXPECT_EQ(r.latency.count(), r.chunks);
}

TEST(LiveStack, DigestMatchesDesReference) {
  const Fig2DesResult des = RunFig2Des(kTransfer);
  ASSERT_TRUE(des.completed);
  ASSERT_EQ(des.retransmits, 0u) << "lossy DES run cannot serve as the byte-stream oracle";

  LiveStackConfig cfg;
  cfg.transfer_bytes = kTransfer;
  const LiveStackResult live = RunLiveFig2(cfg);
  ASSERT_TRUE(live.completed);

  // The acceptance criterion: byte-identical application streams.
  EXPECT_EQ(live.delivered, des.delivered);
  EXPECT_EQ(live.chunks, des.chunks);
  EXPECT_EQ(live.digest, des.digest);
}

TEST(LiveStack, MiniStackMatchesFullStackDigest) {
  LiveStackConfig cfg;
  cfg.transfer_bytes = kTransfer;
  cfg.mini = true;
  const LiveStackResult mini = RunLiveFig2(cfg);
  ASSERT_TRUE(mini.completed);

  cfg.mini = false;
  const LiveStackResult full = RunLiveFig2(cfg);
  ASSERT_TRUE(full.completed);

  EXPECT_EQ(mini.digest, full.digest);
  EXPECT_EQ(mini.chunks, full.chunks);
}

TEST(LiveStack, PollAlwaysModeAlsoMatches) {
  LiveStackConfig cfg;
  cfg.transfer_bytes = 256 * 1024;
  cfg.poll.mode = PollMode::kPollAlways;
  const LiveStackResult live = RunLiveFig2(cfg);
  ASSERT_TRUE(live.completed);
  const Fig2DesResult des = RunFig2Des(cfg.transfer_bytes);
  ASSERT_TRUE(des.completed);
  EXPECT_EQ(live.digest, des.digest);
  for (const ThreadStats& t : live.threads) {
    EXPECT_EQ(t.parks, 0u) << t.name << " parked in poll-always mode";
  }
}

TEST(LiveStack, ChannelCheckerReportsZeroImpostersInLiveMode) {
  LiveStackConfig cfg;
  cfg.transfer_bytes = kTransfer;
  const LiveStackResult r = RunLiveFig2(cfg);
  ASSERT_TRUE(r.completed);

  ChannelChecker checker;
  FoldIntoChecker(r, &checker);
  EXPECT_TRUE(checker.ok()) << [&checker] {
    std::ostringstream os;
    checker.Report(os);
    return os.str();
  }();
  EXPECT_EQ(r.TotalImposters(), 0u);
  // Full stack: 5 data/ack rings + 2 watchdog rings per watched server.
  EXPECT_EQ(checker.live_rings().size(), 15u);
}

TEST(LiveStack, TraceRecordersCaptureEndToEndHops) {
  LiveStackConfig cfg;
  cfg.transfer_bytes = 128 * 1024;
  cfg.enable_trace = true;
  const LiveStackResult r = RunLiveFig2(cfg);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.recorders.size(), 6u);  // one single-threaded recorder per server
  // The app recorded one AsyncBegin per segment, the peer one AsyncEnd.
  EXPECT_EQ(r.recorders[0]->recorded(), r.chunks);
  EXPECT_EQ(r.recorders[3]->recorded(), r.chunks);
  EXPECT_EQ(r.recorders[0]->dropped(), 0u);
}

TEST(LiveStack, UnpinnedRunStillCorrect) {
  LiveStackConfig cfg;
  cfg.transfer_bytes = 256 * 1024;
  cfg.pin_threads = false;
  const LiveStackResult r = RunLiveFig2(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.conservation_ok);
  for (const ThreadStats& t : r.threads) {
    EXPECT_FALSE(t.pinned);
    EXPECT_EQ(t.requested_cpu, -1);
  }
}

}  // namespace
}  // namespace newtos
