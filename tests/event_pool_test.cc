// Tests for the event queue's slot pool: slot recycling, generation-counted
// handle invalidation, cancel-after-fire safety, and eager compaction.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/simulation.h"

namespace newtos {
namespace {

TEST(EventPool, SlotsAreRecycledAcrossPushPopCycles) {
  EventQueue q;
  int fired = 0;
  // Steady push/pop churn must reuse the same slot, not grow the pool: after
  // warm-up, RawSize() stays at 1 and pushed() keeps counting.
  for (int i = 0; i < 1000; ++i) {
    q.Push(i, [&fired] { ++fired; });
    ASSERT_EQ(q.RawSize(), 1u);
    auto [when, fn] = q.Pop();
    EXPECT_EQ(when, i);
    fn();
  }
  EXPECT_EQ(fired, 1000);
  EXPECT_EQ(q.pushed(), 1000u);
}

TEST(EventPool, StaleHandleCannotCancelRecycledSlot) {
  EventQueue q;
  bool first_ran = false;
  bool second_ran = false;
  EventHandle first = q.Push(10, [&first_ran] { first_ran = true; });

  // Fire the first event; its slot is released.
  auto [w1, f1] = q.Pop();
  f1();
  EXPECT_TRUE(first_ran);
  EXPECT_FALSE(first.pending());

  // The next push recycles the same slot with a bumped generation. The old
  // handle must be stale: cancelling it may not touch the new event.
  q.Push(20, [&second_ran] { second_ran = true; });
  EXPECT_FALSE(first.Cancel());
  ASSERT_FALSE(q.Empty());
  auto [w2, f2] = q.Pop();
  f2();
  EXPECT_TRUE(second_ran);
}

TEST(EventPool, CancelAfterFireIsSafeAndReturnsFalse) {
  EventQueue q;
  EventHandle h = q.Push(5, [] {});
  auto [when, fn] = q.Pop();
  fn();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.Cancel());
  EXPECT_FALSE(h.Cancel());  // idempotent
}

TEST(EventPool, CancelIsEffectiveAndIdempotent) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.Push(5, [&ran] { ran = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(h.Cancel());
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.Cancel());  // second cancel is a no-op
  EXPECT_TRUE(q.Empty());    // lazy discard happens in the accessor
  EXPECT_FALSE(ran);
}

TEST(EventPool, HandlesOutliveTheQueue) {
  EventHandle h;
  {
    EventQueue q;
    h = q.Push(5, [] {});
  }
  // The handle shares ownership of the slot pool, so touching it after the
  // queue is gone is safe. The never-fired event still looks pending (its
  // slot was never released); cancelling it is a harmless no-op beyond
  // flipping that state.
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(h.Cancel());
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.Cancel());
}

TEST(EventPool, LiveSizeExcludesCancelledEntries) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(q.Push(100 + i, [] {}));
  }
  EXPECT_EQ(q.RawSize(), 10u);
  EXPECT_EQ(q.LiveSize(), 10u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(handles[static_cast<size_t>(i)].Cancel());
  }
  EXPECT_EQ(q.RawSize(), 10u);  // still occupying the heap
  EXPECT_EQ(q.LiveSize(), 6u);
}

TEST(EventPool, EagerCompactionBoundsCancelledBacklog) {
  EventQueue q;
  // Schedule many events and cancel most of them *behind* a long-lived
  // blocker, so lazy top-of-heap discard can't reclaim them.
  q.Push(0, [] {});
  std::vector<EventHandle> handles;
  for (int i = 0; i < 256; ++i) {
    handles.push_back(q.Push(1000 + i, [] {}));
  }
  for (EventHandle& h : handles) {
    EXPECT_TRUE(h.Cancel());
  }
  EXPECT_EQ(q.LiveSize(), 1u);
  // The next push notices cancelled > heap/2 and compacts in place.
  q.Push(5000, [] {});
  EXPECT_EQ(q.LiveSize(), 2u);
  EXPECT_LE(q.RawSize(), 2u + 1u);  // backlog gone (not just hidden)

  // Pop order is unaffected: blocker at t=0, then the survivor at t=5000.
  auto [w1, f1] = q.Pop();
  EXPECT_EQ(w1, 0);
  auto [w2, f2] = q.Pop();
  EXPECT_EQ(w2, 5000);
  EXPECT_TRUE(q.Empty());
}

TEST(EventPool, CompactionPreservesFifoTieBreak) {
  EventQueue q;
  std::vector<int> order;
  // Interleave cancelled and live events at the same timestamp; after the
  // forced compaction, same-time events must still fire in push order.
  std::vector<EventHandle> doomed;
  q.Push(0, [] {});  // blocker so lazy discard can't help
  for (int i = 0; i < 100; ++i) {
    q.Push(10, [&order, i] { order.push_back(i); });
    doomed.push_back(q.Push(10, [] { FAIL() << "cancelled event fired"; }));
    doomed.push_back(q.Push(10, [] { FAIL() << "cancelled event fired"; }));
  }
  for (EventHandle& h : doomed) {
    EXPECT_TRUE(h.Cancel());
  }
  q.Push(20, [] {});  // triggers compaction (200 cancelled > 301/2)
  while (!q.Empty()) {
    auto [when, fn] = q.Pop();
    fn();
  }
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventPool, ReserveAvoidsRegrowth) {
  EventQueue q;
  q.Reserve(64);
  for (int i = 0; i < 64; ++i) {
    q.Push(i, [] {});
  }
  EXPECT_EQ(q.RawSize(), 64u);
  while (!q.Empty()) {
    auto [when, fn] = q.Pop();
    fn();
  }
}

TEST(EventPool, SimulationCancellationStillWorksEndToEnd) {
  Simulation sim;
  int fired = 0;
  EventHandle keep = sim.Schedule(10, [&fired] { ++fired; });
  EventHandle drop = sim.Schedule(20, [&fired] { fired += 100; });
  EXPECT_TRUE(drop.Cancel());
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(keep.pending());
}

}  // namespace
}  // namespace newtos
