// Static/dynamic wiring equivalence: the ring graph newtos_analyze extracts
// from the sources must byte-match the wiring the runtime checkers observe.
//
// The static DES graph is a union over stack configurations (pf on/off,
// syscall gateway on/off), so the dynamic side folds several testbed runs
// into one ChannelChecker — WriteWiring merges rings by name. The live gates
// compare RunLiveFig2's observed wiring against the static reading of
// src/runtime/live_wiring.h for both stack flavours.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/check/channel_checker.h"
#include "src/check/stack_check.h"
#include "src/core/testbed.h"
#include "src/fault/watchdog.h"
#include "src/os/message.h"
#include "src/os/microreboot.h"
#include "src/runtime/live_stack.h"
#include "src/workload/iperf.h"
#include "src/workload/udp_flood.h"
#include "tools/analyze/analyze.h"

#if !NEWTOS_CHECKERS
#error "wiring_equiv_test requires NEWTOS_CHECKERS (on by default)"
#endif

namespace newtos {
namespace {

struct StaticGraph {
  analyze::Config config;
  analyze::Model model;
};

// Extracts the tree under the checked-in analyze.toml. Cheap enough (a few
// dozen files lexed) to redo per test; keeps the tests independent.
StaticGraph ExtractStaticGraph() {
  StaticGraph g;
  std::string error;
  EXPECT_TRUE(analyze::LoadConfig(
      std::string(ANALYZE_REPO_ROOT) + "/tools/analyze/analyze.toml", &g.config, &error))
      << error;
  EXPECT_TRUE(analyze::ExtractTree(ANALYZE_REPO_ROOT, g.config, &g.model, &error))
      << error;
  return g;
}

// The watchdog rig must outlive the shared checker's WriteWiring call, like
// the testbeds: the checker keys ring state by channel address, so a
// destroyed acks ring could otherwise donate its address (and stale state)
// to a channel of the next configuration.
struct WatchdogRig {
  explicit WatchdogRig(Testbed& tb)
      : mgr(&tb.sim()), watchdog(&tb.sim(), &mgr, WatchdogServer::Params()) {}
  MicrorebootManager mgr;
  WatchdogServer watchdog;
};

// One DES testbed run folded into the shared checker. With the gateway and
// packet filter enabled the run also drives the watchdog (heartbeats + acks
// for every system server) and one outbound UDP datagram, so the branches
// only this configuration wires all get observed.
void RunDesConfiguration(ChannelChecker* check, Testbed& tb, WatchdogRig* rig) {
  SocketApi* api = tb.stack()->CreateApp("app", tb.machine().core(0));
  if (rig != nullptr) {
    rig->watchdog.BindCore(tb.machine().core(tb.stack()->config().watchdog_core));
    for (Server* s : tb.stack()->SystemServers()) {
      rig->watchdog.Watch(s, 1'000'000);  // Watch() before Attach(): wd rings must exist
    }
    rig->watchdog.Start();
  }

  StackChecker wiring(check);
  wiring.Attach(tb.stack());
  if (rig != nullptr) {
    wiring.AttachServer(&rig->watchdog);
  }

  // Workloads start only after Attach: BindDirect pushes its bind request
  // into udp/app synchronously, and a pre-attach push would make the
  // server's pop look like pop-before-push to the checker.
  IperfSender::Params params;
  params.dst = tb.peer_addr();
  IperfSender sender(api, params);
  IperfPeerSink sink(&tb.peer());
  sender.Start();

  UdpSutSink udp_sink;
  udp_sink.BindDirect(tb.stack()->udp(), kUdpFloodPort);
  UdpPeerFlood::Params fp;
  fp.sut = tb.sut_addr();
  fp.packets_per_sec = 20'000;
  UdpPeerFlood flood(&tb.peer(), fp);
  flood.Start();

  // One outbound datagram makes udp push ip/tx. The direct anonymous push
  // into udp/app is unrecorded (actor 0), matching the static graph, where
  // udp/app has no in-graph producer either.
  Msg send;
  send.type = MsgType::kSockSend;
  send.addr = tb.peer_addr();
  send.port = kUdpFloodPort;
  send.value = 64;
  tb.stack()->udp()->app_in()->Push(send);

  tb.sim().RunFor(200 * kMillisecond);
  EXPECT_GT(sink.total_bytes(), 0u);
  EXPECT_GT(udp_sink.received(), 0u);
  std::ostringstream report;
  check->Report(report);
  EXPECT_TRUE(check->ok()) << report.str();
}

TEST(WiringEquiv, DesUnionGraphMatchesStaticExtraction) {
  ChannelChecker check;

  // Configuration A: packet filter + syscall gateway + watchdog.
  TestbedOptions full_opts;
  full_opts.stack.use_pf = true;
  full_opts.stack.use_syscall_gateway = true;
  Testbed full_tb(full_opts);
  WatchdogRig rig(full_tb);
  RunDesConfiguration(&check, full_tb, &rig);

  // Configuration B: direct wiring — ip feeds L4 itself, apps talk to tcp
  // directly. Both testbeds (and the rig) stay alive until WriteWiring so no
  // registered channel address is reused across runs.
  TestbedOptions direct_opts;
  direct_opts.stack.use_pf = false;
  direct_opts.stack.use_syscall_gateway = false;
  Testbed direct_tb(direct_opts);
  RunDesConfiguration(&check, direct_tb, /*rig=*/nullptr);

  const StaticGraph g = ExtractStaticGraph();
  std::ostringstream statically;
  analyze::WriteDesWiring(g.model, statically);
  std::ostringstream observed;
  check.WriteWiring(observed);
  EXPECT_EQ(observed.str(), statically.str());
}

TEST(WiringEquiv, LiveFullStackMatchesStaticTable) {
  LiveStackConfig cfg;
  cfg.transfer_bytes = 2 * 1024 * 1024;
  const LiveStackResult r = RunLiveFig2(cfg);
  ASSERT_TRUE(r.completed);
  ASSERT_FALSE(r.wiring.empty());
  // The wd rings only show up as wired once real heartbeat traffic flowed.
  EXPECT_GE(r.heartbeat_rounds, 1u);

  const StaticGraph g = ExtractStaticGraph();
  std::ostringstream statically;
  analyze::WriteLiveWiring(g.model, /*mini=*/false, statically);
  EXPECT_EQ(r.wiring, statically.str());
}

TEST(WiringEquiv, LiveMiniStackMatchesStaticTable) {
  LiveStackConfig cfg;
  cfg.mini = true;
  cfg.transfer_bytes = 1024 * 1024;
  const LiveStackResult r = RunLiveFig2(cfg);
  ASSERT_TRUE(r.completed);
  ASSERT_FALSE(r.wiring.empty());

  const StaticGraph g = ExtractStaticGraph();
  std::ostringstream statically;
  analyze::WriteLiveWiring(g.model, /*mini=*/true, statically);
  EXPECT_EQ(r.wiring, statically.str());
}

TEST(WiringEquiv, SharedWaiversMirrorDynamicChecker) {
  // Every shared-by-design pattern the dynamic checker knows must also be
  // declared (and re-justified) in analyze.toml, so the two toolchains can
  // never drift apart on which rings are legitimately multi-producer.
  const StaticGraph g = ExtractStaticGraph();
  for (const char* name :
       {"ip/tx", "x/acks", "x/events", "x/app", "x/req", "x/evt"}) {
    ASSERT_NE(StackChecker::SharedReasonFor(name), nullptr) << name;
    EXPECT_NE(g.config.FindShared(name), nullptr)
        << "dynamic checker shares '" << name << "' but analyze.toml does not";
  }
}

}  // namespace
}  // namespace newtos
