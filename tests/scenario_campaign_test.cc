// The scripts-vs-oracle gate: running the checked-in scenarios/tab7 scripts
// through the scenario runner in campaign order must produce a resilience
// CSV byte-identical to the hand-coded CampaignRunner sweep. The C++
// campaign is the oracle; the scripts are the re-expression under test.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/fault/campaign.h"
#include "src/scenario/parser.h"
#include "src/scenario/runner.h"

namespace newtos::scenario {
namespace {

std::vector<Script> LoadTab7() {
  std::vector<Script> scripts;
  ParseError err;
  EXPECT_TRUE(LoadScriptDir(std::string(NEWTOS_SCENARIO_DIR) + "/tab7", &scripts, &err))
      << err.Format();
  return scripts;
}

TEST(ScenarioCampaignTest, Tab7ScriptsMatchDefaultFaultSpace) {
  const std::vector<Script> scripts = LoadTab7();
  const std::vector<CampaignFault> space = DefaultFaultSpace();
  ASSERT_EQ(scripts.size(), space.size());
  for (size_t i = 0; i < scripts.size(); ++i) {
    ASSERT_EQ(scripts[i].injects.size(), 1u) << scripts[i].path;
    EXPECT_EQ(scripts[i].injects[0].cls, space[i].cls) << scripts[i].path;
    EXPECT_EQ(scripts[i].injects[0].target, space[i].target) << scripts[i].path;
    // Every script sweeps the same frequency axis, campaign-style.
    ASSERT_EQ(scripts[i].freqs.size(), 2u);
    EXPECT_EQ(scripts[i].freqs[0], 3'600'000 * kKhz);
    EXPECT_EQ(scripts[i].freqs[1], 1'200'000 * kKhz);
  }
}

TEST(ScenarioCampaignTest, ScriptedCsvIsByteIdenticalToOracle) {
  CampaignRunner oracle;
  oracle.Run();
  const std::string oracle_csv = oracle.ToCsv();

  int oracle_pass = 0;
  for (const CampaignCell& c : oracle.cells()) {
    oracle_pass += c.pass ? 1 : 0;
  }
  ASSERT_EQ(oracle_pass, static_cast<int>(oracle.cells().size()))
      << "the oracle matrix itself regressed — fix that before blaming the scripts";

  ScenarioRunner runner;
  const std::vector<CampaignCell> cells = runner.RunCampaignOrder(LoadTab7());
  std::ostringstream scripted_csv;
  CampaignTable(cells).WriteCsv(scripted_csv);

  EXPECT_EQ(scripted_csv.str(), oracle_csv);
}

TEST(ScenarioCampaignTest, ScriptExpectsAgreeWithTheCellJudge) {
  // Each tab7 script carries expect lines mirroring the campaign's judge;
  // running any one of them must pass both the judge and the expects.
  const std::vector<Script> scripts = LoadTab7();
  ASSERT_FALSE(scripts.empty());
  // One channel-fault and one server-fault representative keeps this quick;
  // the per-script ctest entries sweep the rest.
  for (size_t i : {size_t{0}, scripts.size() - 1}) {
    ScenarioRunner runner;
    const ScenarioOutcome o = runner.RunOne(scripts[i], scripts[i].freqs[0]);
    EXPECT_TRUE(o.cell.pass) << scripts[i].path;
    for (const ExpectResult& r : o.expects) {
      EXPECT_TRUE(r.pass) << scripts[i].path << ":" << r.line << ": " << r.what;
    }
  }
}

}  // namespace
}  // namespace newtos::scenario
