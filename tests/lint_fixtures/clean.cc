// Lint fixture: a well-behaved file — no banned idiom anywhere. Every rule
// runs over it and none may fire.
#include <cstdint>
#include <vector>

namespace fixture {

struct Counter {
  uint64_t value = 0;
};

inline uint64_t Bump(Counter& c) { return ++c.value; }

inline uint64_t SumAll(const std::vector<Counter>& counters) {
  uint64_t s = 0;
  for (const Counter& c : counters) {
    s += c.value;
  }
  return s;
}

}  // namespace fixture
