// Lint fixture: one std::deque declaration.
#include <deque>

std::deque<int> backlog;
