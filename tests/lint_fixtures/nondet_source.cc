// Lint fixture: one rand() call. Identifiers that merely contain the word
// (rand_state below) and member calls (rng.rand()) must not fire.
#include <cstdlib>

struct Rng {
  unsigned rand_state = 1;
  int Next() { return static_cast<int>(rand_state *= 48271u); }
};

int Roll() {
  Rng rng;
  (void)rng.rand();
  return rand() % 6;
}
