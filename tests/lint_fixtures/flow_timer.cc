// Lint fixture: one direct event-queue timer arm in flow code. Near-misses
// that must NOT fire: MaybeSchedule()/Reschedule() member calls (no word
// boundary), the words Schedule( and ScheduleAt( in this comment (blanked),
// and a bare Schedule identifier with no call parenthesis.
struct Sim;

void MaybeSchedule();
void Reschedule(int shard);

void ArmRetransmit(Sim* sim, long rto) {
  MaybeSchedule();
  Reschedule(3);
  const bool has_schedule = sim != nullptr;  // `schedule` substring, lowercase
  if (has_schedule) {
    sim->Schedule(rto, nullptr);
  }
}
