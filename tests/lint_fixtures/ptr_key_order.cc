// Lint fixture: one std::map keyed by a pointer. The value-typed map next to
// it must not fire (and neither map is iterated).
#include <map>

struct Conn {
  int id = 0;
};

std::map<Conn*, int> by_addr;
std::map<int, Conn> by_id;
