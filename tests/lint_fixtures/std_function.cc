// Lint fixture: one std::function use. A comment mentioning std::function
// must not fire, nor must the <functional> include.
#include <functional>

void Call(const std::function<int()>& f) {
  f();
}
