// Lint fixture: one std::make_unique call. unique_ptr itself is fine.
#include <memory>

struct Blob {
  int v = 0;
};

std::unique_ptr<Blob> Fresh() {
  return std::make_unique<Blob>();
}
