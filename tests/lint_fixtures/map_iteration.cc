// Lint fixture: one range-for over a std::map. Lookups on the same map must
// not fire; only iteration is order-sensitive.
#include <map>

std::map<int, int> table;

int Lookup(int key) {
  auto it = table.find(key);
  return it == table.end() ? 0 : it->second;
}

int Sum() {
  int s = 0;
  for (const auto& kv : table) {
    s += kv.second;
  }
  return s;
}
