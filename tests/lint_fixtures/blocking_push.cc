// Fixture: blocking-push must fire exactly once, on the spin loop below.
// The look-alikes — a single non-looping retry, a bounded for-loop drain, a
// pop-side spin, and a spin mentioned only in a comment — must not fire.

struct Ring {
  bool Push(int value);
  bool TryPush(int value);
  bool TryPop(int* value);
};

void SpinUntilAccepted(Ring& ring, int value) {
  while (!ring.TryPush(value)) {  // the violation: producer busy-waits on the consumer
  }
}

bool SingleAttempt(Ring& ring, int value) {
  if (!ring.Push(value)) {  // not a loop: backpressure is reported, not spun on
    return false;
  }
  return true;
}

void BoundedRetry(Ring& ring, int value) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (ring.TryPush(value)) {
      return;
    }
  }
}

int DrainAll(Ring& ring) {
  int value = 0;
  int last = 0;
  // Consumer side: `while (!ring.TryPush(v))` in a comment must not count,
  // and popping in a loop is the normal drain idiom, not a blocking push.
  while (ring.TryPop(&value)) {
    last = value;
  }
  return last;
}
