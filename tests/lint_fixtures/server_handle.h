// Lint fixture: a Server subclass with no Handle() override. The base class
// definition itself must not fire.
#ifndef TESTS_LINT_FIXTURES_SERVER_HANDLE_H_
#define TESTS_LINT_FIXTURES_SERVER_HANDLE_H_

class Server {
 public:
  virtual ~Server() = default;
};

class MuteServer : public Server {
 public:
  int value() const { return 0; }
};

#endif  // TESTS_LINT_FIXTURES_SERVER_HANDLE_H_
