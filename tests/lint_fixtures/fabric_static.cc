// Lint fixture: one function-scope mutable static — cross-lane shared state
// in fabric code. Look-alikes that must not fire: static_cast, static const,
// static constexpr, and a static member function declaration.
#include <cstdint>

struct Counter {
  static constexpr uint64_t kScale = 1000;  // immutable: must not fire
  static uint64_t Next();                   // member function: must not fire
};

uint64_t Tick(uint64_t x) {
  static const uint64_t kBase = 7;  // immutable: must not fire
  static uint64_t calls = 0;        // the violation: shared across lanes
  calls += static_cast<uint64_t>(x);
  return kBase + calls;
}

uint64_t Counter::Next() { return Tick(kScale); }
