// Lint fixture: one steady_clock read. The word in this comment
// (steady_clock) must not fire — comments are blanked before matching.
#include <chrono>

long long HostNanos() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
