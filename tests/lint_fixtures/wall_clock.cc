// Lint fixture: one gettimeofday read. The word in this comment
// (gettimeofday) must not fire — comments are blanked before matching.
// (steady_clock would also trip runtime-clock via its chrono spelling; this
// fixture must trip wall-clock alone.)
#include <sys/time.h>

long long HostMicros() {
  struct timeval tv;
  gettimeofday(&tv, nullptr);
  return tv.tv_sec * 1000000LL + tv.tv_usec;
}
