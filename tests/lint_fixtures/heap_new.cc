// Lint fixture: one non-placement `new` expression. The placement form and
// the preprocessor line below must NOT fire.
#include <new>

struct Widget {
  int v = 0;
};

Widget* Leak() {
  return new Widget();
}

void PlacementIsFine(void* slab) {
  new (slab) Widget();
}
