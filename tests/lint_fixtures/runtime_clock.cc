// Lint fixture: a std::chrono use in model code. Host-time primitives
// (the word chrono in this comment must not fire — comments are blanked)
// belong to src/runtime/clock.h; model code takes SimTime. Exactly one
// code occurrence below, so the fixture yields exactly one diagnostic.
#include <thread>

void NapMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}
