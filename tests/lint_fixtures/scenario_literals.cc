// Lint fixture: one magic duration (numeric literal * time-unit constant) in
// scenario-lowering code. Near-misses that must NOT fire: division by a unit,
// a variable scaled by a unit, the pattern inside this comment (blanked), and
// the pattern inside a string literal.

#include <cstdint>

using SimTime = int64_t;
inline constexpr SimTime kMicrosecond = 1000000;
inline constexpr SimTime kMillisecond = 1000000000;

SimTime Lower(SimTime budget, SimTime scale) {
  // 30 * kMillisecond in a comment is blanked before matching.
  const SimTime millis = budget / kMillisecond;
  const SimTime scaled = scale * kMicrosecond;
  const SimTime deadline = 30 * kMillisecond;  // the one violation
  const char* label = "5 * kMillisecond";
  (void)label;
  return millis + scaled + deadline;
}
