// Lint fixture: one ring constructed with a non-power-of-two literal. The
// power-of-two ring and the runtime-sized ring must not fire.
#include <cstddef>

template <typename T>
struct SpscRing {
  explicit SpscRing(std::size_t capacity) { (void)capacity; }
};

void Build(std::size_t n) {
  SpscRing<int> odd(100);
  SpscRing<int> even(128);
  SpscRing<int> dynamic(n);
}
