#include "src/metrics/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/sim/random.h"

namespace newtos {
namespace {

TEST(LatencyHistogram, EmptyReturnsZeroes) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.MeanNs(), 0.0);
}

TEST(LatencyHistogram, SingleSampleDominatesAllQuantiles) {
  LatencyHistogram h;
  h.Record(100 * kMicrosecond);
  EXPECT_EQ(h.count(), 1u);
  // Quantiles land in the sample's bucket: within ~3.2% of the true value.
  EXPECT_NEAR(static_cast<double>(h.P50()), 100.0 * kMicrosecond, 0.04 * 100 * kMicrosecond);
  EXPECT_EQ(h.P50(), h.P99());
}

TEST(LatencyHistogram, MinMaxMeanExact) {
  LatencyHistogram h;
  h.Record(1 * kMicrosecond);
  h.Record(3 * kMicrosecond);
  h.Record(8 * kMicrosecond);
  EXPECT_EQ(h.min(), 1 * kMicrosecond);
  EXPECT_EQ(h.max(), 8 * kMicrosecond);
  EXPECT_DOUBLE_EQ(h.MeanNs(), 4000.0);
}

TEST(LatencyHistogram, QuantilesOrderedAndBounded) {
  LatencyHistogram h;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    h.Record(static_cast<SimTime>(rng.Exponential(50.0) * kMicrosecond));
  }
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.9));
  EXPECT_LE(h.Quantile(0.9), h.Quantile(0.99));
  EXPECT_LE(h.Quantile(0.99), h.Quantile(1.0));
  EXPECT_GE(h.Quantile(0.0), 0);
}

TEST(LatencyHistogram, QuantileAccuracyWithinBucketError) {
  // Uniform samples 0..1ms: p50 should be ~0.5ms within bucket resolution.
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Record(i * kMicrosecond);
  }
  EXPECT_NEAR(static_cast<double>(h.P50()), 500.0 * kMicrosecond, 25.0 * kMicrosecond);
  EXPECT_NEAR(static_cast<double>(h.P99()), 990.0 * kMicrosecond, 40.0 * kMicrosecond);
}

TEST(LatencyHistogram, HandlesFullRange) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(1);  // 1 ps -> 0 ns bucket
  h.Record(30 * kSecond);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_GE(h.Quantile(1.0), kSecond);
}

TEST(LatencyHistogram, NegativeClampsToZero) {
  LatencyHistogram h;
  h.Record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_LE(h.Quantile(0.5), 2 * kNanosecond);
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.Record(kMillisecond);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0);
}

TEST(LatencyHistogram, MergeCombinesDistributions) {
  LatencyHistogram a, b, all;
  for (int i = 0; i < 500; ++i) {
    a.Record(10 * kMicrosecond);
    all.Record(10 * kMicrosecond);
    b.Record(1000 * kMicrosecond);
    all.Record(1000 * kMicrosecond);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_EQ(a.Quantile(0.25), all.Quantile(0.25));
  EXPECT_EQ(a.Quantile(0.75), all.Quantile(0.75));
}

TEST(LatencyHistogram, RelativeErrorStaysSmallAcrossMagnitudes) {
  // Property: a recorded value's bucket-representative is within ~4%.
  for (SimTime v = 10 * kNanosecond; v < 10 * kSecond; v *= 7) {
    LatencyHistogram h;
    h.Record(v);
    const double rep = static_cast<double>(h.Quantile(0.5));
    EXPECT_NEAR(rep, static_cast<double>(v), 0.04 * static_cast<double>(v)) << "v=" << v;
  }
}

}  // namespace
}  // namespace newtos
