#include "src/hw/machine.h"

#include <gtest/gtest.h>

#include "src/sim/simulation.h"

namespace newtos {
namespace {

TEST(Machine, ConstructsRequestedTopology) {
  Simulation sim;
  Machine::Params p;
  p.num_cores = 4;
  Machine m(&sim, "m", p);
  EXPECT_EQ(m.num_cores(), 4);
  EXPECT_NE(m.nic(), nullptr);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(m.core(i)->id(), i);
  }
}

TEST(Machine, CoresStartAtConfiguredBaseClock) {
  Simulation sim;
  Machine::Params p;
  p.initial_freq = 2'800'000 * kKhz;
  Machine m(&sim, "m", p);
  for (int i = 0; i < m.num_cores(); ++i) {
    EXPECT_EQ(m.core(i)->frequency(), 2'800'000 * kKhz);
  }
}

TEST(Machine, PackageWattsIncludesUncoreAndAllCores) {
  Simulation sim;
  Machine m(&sim, "m", {});
  double sum = m.power_model().uncore_watts();
  for (int i = 0; i < m.num_cores(); ++i) {
    sum += m.core(i)->CurrentWatts();
  }
  EXPECT_DOUBLE_EQ(m.PackageWatts(), sum);
}

TEST(Machine, PackageEnergyIntegrates) {
  Simulation sim;
  Machine m(&sim, "m", {});
  const double watts = m.PackageWatts();
  sim.RunFor(kSecond);
  EXPECT_NEAR(m.PackageJoulesAt(sim.Now()), watts, 0.5);
}

TEST(Machine, ResetStatsZeroesEnergy) {
  Simulation sim;
  Machine m(&sim, "m", {});
  sim.RunFor(kSecond);
  m.ResetStatsAt(sim.Now());
  EXPECT_NEAR(m.PackageJoulesAt(sim.Now()), 0.0, 1e-9);
  sim.RunFor(kSecond);
  EXPECT_GT(m.PackageJoulesAt(sim.Now()), 1.0);
}

TEST(Machine, SlowingACoreReducesPackagePower) {
  Simulation sim;
  Machine m(&sim, "m", {});
  m.core(0)->SetFrequency(3'600'000 * kKhz);
  const double before = m.PackageWatts();
  m.core(0)->SetFrequency(800'000 * kKhz);
  EXPECT_LT(m.PackageWatts(), before);
}

TEST(Machine, WimpyCoreTableSupported) {
  Simulation sim;
  Machine::Params p;
  p.core_table = WimpyCoreOperatingPoints();
  p.initial_freq = 1'600'000 * kKhz;
  Machine m(&sim, "m", p);
  EXPECT_EQ(m.core(0)->frequency(), 1'600'000 * kKhz);
  EXPECT_EQ(m.core(0)->table().size(), WimpyCoreOperatingPoints().size());
}

}  // namespace
}  // namespace newtos
