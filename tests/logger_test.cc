#include "src/sim/logger.h"

#include <gtest/gtest.h>

#include <sstream>

namespace newtos {
namespace {

class LoggerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::SetSink(&out_);
    Logger::SetLevel(LogLevel::kTrace);
  }
  void TearDown() override {
    Logger::SetSink(nullptr);
    Logger::SetLevel(LogLevel::kWarn);
  }
  std::ostringstream out_;
};

TEST_F(LoggerTest, EmitsTimestampedLine) {
  Logger::Log(LogLevel::kInfo, 2 * kMicrosecond, "tcp", "hello");
  EXPECT_NE(out_.str().find("2.000us"), std::string::npos);
  EXPECT_NE(out_.str().find("tcp: hello"), std::string::npos);
  EXPECT_NE(out_.str().find("INFO"), std::string::npos);
}

TEST_F(LoggerTest, LevelFiltersLowerMessages) {
  Logger::SetLevel(LogLevel::kError);
  Logger::Log(LogLevel::kDebug, 0, "x", "dropped");
  EXPECT_TRUE(out_.str().empty());
  Logger::Log(LogLevel::kError, 0, "x", "kept");
  EXPECT_NE(out_.str().find("kept"), std::string::npos);
}

TEST_F(LoggerTest, MacroShortCircuitsBelowLevel) {
  Logger::SetLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  NEWTOS_LOG(kDebug, 0, "x", "value=" << expensive());
  EXPECT_EQ(evaluations, 0);
  NEWTOS_LOG(kError, 0, "x", "value=" << expensive());
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggerTest, StreamExpressionFormats) {
  NEWTOS_LOG(kInfo, kMillisecond, "core", "freq=" << 3.6 << "GHz util=" << 42 << "%");
  EXPECT_NE(out_.str().find("freq=3.6GHz util=42%"), std::string::npos);
}

}  // namespace
}  // namespace newtos
