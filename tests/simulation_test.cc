#include "src/sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace newtos {
namespace {

TEST(Simulation, ClockAdvancesToEventTimes) {
  Simulation sim;
  std::vector<SimTime> seen;
  sim.Schedule(10, [&] { seen.push_back(sim.Now()); });
  sim.Schedule(25, [&] { seen.push_back(sim.Now()); });
  sim.Run();
  EXPECT_EQ(seen, (std::vector<SimTime>{10, 25}));
  EXPECT_EQ(sim.Now(), 25);
}

TEST(Simulation, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(100, [&] { ++fired; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 50);  // idles forward to the boundary
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, RunForIsRelative) {
  Simulation sim;
  sim.RunFor(100);
  EXPECT_EQ(sim.Now(), 100);
  sim.RunFor(50);
  EXPECT_EQ(sim.Now(), 150);
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      sim.Schedule(10, recurse);
    }
  };
  sim.Schedule(10, recurse);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), 50);
}

TEST(Simulation, StopEndsRunEarly) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(10, [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(20, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.stopped());
  sim.Run();  // resumes with the remaining event
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, NegativeDelayClampsToNow) {
  Simulation sim;
  sim.RunFor(100);
  SimTime when = -1;
  sim.Schedule(-50, [&] { when = sim.Now(); });
  sim.Run();
  EXPECT_EQ(when, 100);
}

TEST(Simulation, ScheduleAtPastClampsToNow) {
  Simulation sim;
  sim.RunFor(100);
  SimTime when = -1;
  sim.ScheduleAt(10, [&] { when = sim.Now(); });
  sim.Run();
  EXPECT_EQ(when, 100);
}

TEST(Simulation, CancelledEventsDoNotRun) {
  Simulation sim;
  bool ran = false;
  EventHandle h = sim.Schedule(10, [&] { ran = true; });
  h.Cancel();
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(Simulation, EventsProcessedCounts) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) {
    sim.Schedule(i, [] {});
  }
  EXPECT_EQ(sim.Run(), 7u);
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(Simulation, SameInstantEventsRunInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(42, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace newtos
