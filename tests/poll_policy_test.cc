#include "src/core/poll_policy.h"

#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "src/workload/udp_flood.h"

namespace newtos {
namespace {

TEST(PollPolicy, PollAlwaysKeepsCoresSpinning) {
  Testbed tb;
  PollPolicy policy(&tb.sim(), PollMode::kPollAlways);
  policy.Manage(tb.machine().core(1), {tb.stack()->driver()});
  tb.sim().RunFor(50 * kMillisecond);
  EXPECT_EQ(tb.machine().core(1)->idle_activity(), CoreActivity::kPolling);
  EXPECT_EQ(policy.halts(), 0u);
}

TEST(PollPolicy, HaltWhenIdleParksIdleCore) {
  Testbed tb;
  PollPolicy policy(&tb.sim(), PollMode::kHaltWhenIdle, 5 * kMicrosecond);
  policy.Manage(tb.machine().core(1), {tb.stack()->driver()});
  tb.sim().RunFor(kMillisecond);  // no traffic
  EXPECT_EQ(tb.machine().core(1)->idle_activity(), CoreActivity::kHalted);
  EXPECT_EQ(policy.halts(), 1u);
}

TEST(PollPolicy, TrafficWakesAHaltedCore) {
  Testbed tb;
  PollPolicy policy(&tb.sim(), PollMode::kHaltWhenIdle, 5 * kMicrosecond);
  policy.Manage(tb.machine().core(1), {tb.stack()->driver()});
  policy.Manage(tb.machine().core(2), {tb.stack()->ip(), tb.stack()->pf()});
  policy.Manage(tb.machine().core(3), {tb.stack()->tcp(), tb.stack()->udp()});

  UdpSutSink sink;
  sink.BindDirect(tb.stack()->udp(), kUdpFloodPort);
  tb.sim().RunFor(kMillisecond);
  ASSERT_EQ(tb.machine().core(1)->idle_activity(), CoreActivity::kHalted);

  UdpPeerFlood::Params fp;
  fp.sut = tb.sut_addr();
  fp.packets_per_sec = 1000;
  UdpPeerFlood flood(&tb.peer(), fp);
  flood.Start();
  tb.sim().RunFor(100 * kMillisecond);

  EXPECT_GT(sink.received(), 90u);  // packets flow despite halting
  EXPECT_GT(policy.halts(), 1u);    // core re-halts between packets
}

TEST(PollPolicy, HaltingSavesEnergyAtLowLoad) {
  auto joules = [](PollMode mode) {
    Testbed tb;
    PollPolicy policy(&tb.sim(), mode, 5 * kMicrosecond);
    policy.Manage(tb.machine().core(1), {tb.stack()->driver()});
    policy.Manage(tb.machine().core(2), {tb.stack()->ip(), tb.stack()->pf()});
    policy.Manage(tb.machine().core(3), {tb.stack()->tcp(), tb.stack()->udp()});
    UdpSutSink sink;
    sink.BindDirect(tb.stack()->udp(), kUdpFloodPort);
    UdpPeerFlood::Params fp;
    fp.sut = tb.sut_addr();
    fp.packets_per_sec = 5000;  // light load
    UdpPeerFlood flood(&tb.peer(), fp);
    flood.Start();
    tb.machine().ResetStatsAt(tb.sim().Now());
    tb.sim().RunFor(200 * kMillisecond);
    return tb.machine().PackageJoulesAt(tb.sim().Now());
  };
  const double polling = joules(PollMode::kPollAlways);
  const double halting = joules(PollMode::kHaltWhenIdle);
  EXPECT_LT(halting, 0.6 * polling)
      << "halting must cut energy at light load: " << halting << " vs " << polling << " J";
}

TEST(PollPolicy, BusyServersCancelPendingHalt) {
  Testbed tb;
  PollPolicy policy(&tb.sim(), PollMode::kHaltWhenIdle, 100 * kMillisecond);  // long grace
  policy.Manage(tb.machine().core(3), {tb.stack()->tcp(), tb.stack()->udp()});

  UdpSutSink sink;
  sink.BindDirect(tb.stack()->udp(), kUdpFloodPort);
  UdpPeerFlood::Params fp;
  fp.sut = tb.sut_addr();
  fp.packets_per_sec = 100'000;  // steady traffic, gaps far below grace period
  UdpPeerFlood flood(&tb.peer(), fp);
  flood.Start();
  tb.sim().RunFor(300 * kMillisecond);
  EXPECT_EQ(policy.halts(), 0u);
  EXPECT_EQ(tb.machine().core(3)->idle_activity(), CoreActivity::kPolling);
}

}  // namespace
}  // namespace newtos
