// Workload generator unit tests (on the standard testbed).

#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "src/workload/httpd.h"
#include "src/workload/iperf.h"
#include "src/workload/udp_flood.h"

namespace newtos {
namespace {

TEST(IperfWorkload, SenderKeepsPipeFull) {
  Testbed tb;
  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  sp.burst_bytes = 64 * 1024;
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();
  tb.sim().RunFor(100 * kMillisecond);
  EXPECT_EQ(sender.established(), 1);
  // Multiple bursts were re-armed through drained notifications.
  EXPECT_GT(sender.bytes_submitted(), 10u * sp.burst_bytes);
  EXPECT_GT(sink.total_bytes(), 5u * sp.burst_bytes);
}

TEST(IperfWorkload, MultipleConnectionsAggregate) {
  Testbed tb;
  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  sp.connections = 4;
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();
  tb.sim().RunFor(100 * kMillisecond);
  EXPECT_EQ(sender.established(), 4);
  EXPECT_EQ(tb.stack()->tcp()->host().connection_count(), 4u);
  EXPECT_GT(sink.total_bytes(), 0u);
}

TEST(IperfWorkload, ReceivePathCountsBytes) {
  Testbed tb;
  SocketApi* api = tb.stack()->CreateApp("sink", tb.machine().core(0));
  IperfSutSink sink(api);
  sink.Start();
  tb.sim().RunFor(kMillisecond);
  IperfPeerSender::Params pp;
  pp.sut = tb.sut_addr();
  IperfPeerSender sender(&tb.peer(), pp);
  sender.Start();
  tb.sim().RunFor(100 * kMillisecond);
  EXPECT_GT(sink.total_bytes(), 10u * 1024u * 1024u);
  EXPECT_LE(sink.total_bytes(), sender.bytes_submitted());
}

TEST(HttpWorkload, ClosedLoopServesConcurrencyTimesRounds) {
  Testbed tb;
  SocketApi* api = tb.stack()->CreateApp("httpd", tb.machine().core(0));
  HttpParams hp;
  hp.concurrency = 4;
  hp.response_bytes = 1024;
  HttpServerApp server(api, hp);
  server.Start();
  tb.sim().RunFor(kMillisecond);
  HttpPeerClient client(&tb.peer(), tb.sut_addr(), hp);
  client.Start();
  tb.sim().RunFor(100 * kMillisecond);
  EXPECT_GT(client.responses(), 100u);
  // Closed loop: the server may be ahead by at most the responses in flight.
  EXPECT_GE(server.requests_served(), client.responses());
  EXPECT_LE(server.requests_served(), client.responses() + hp.concurrency);
}

TEST(HttpWorkload, LargerResponsesLowerRequestRate) {
  auto rate = [](uint32_t response_bytes) {
    Testbed tb;
    SocketApi* api = tb.stack()->CreateApp("httpd", tb.machine().core(0));
    HttpParams hp;
    hp.concurrency = 16;
    hp.response_bytes = response_bytes;
    HttpServerApp server(api, hp);
    server.Start();
    tb.sim().RunFor(kMillisecond);
    HttpPeerClient client(&tb.peer(), tb.sut_addr(), hp);
    client.Start();
    tb.sim().RunFor(200 * kMillisecond);
    return client.responses();
  };
  EXPECT_GT(rate(1024), rate(256 * 1024));
}

TEST(HttpWorkload, ComputeCyclesThrottleThroughput) {
  auto rate = [](Cycles compute) {
    Testbed tb;
    SocketApi* api = tb.stack()->CreateApp("httpd", tb.machine().core(0));
    HttpParams hp;
    hp.concurrency = 16;
    hp.server_compute_cycles = compute;
    HttpServerApp server(api, hp);
    server.Start();
    tb.sim().RunFor(kMillisecond);
    HttpPeerClient client(&tb.peer(), tb.sut_addr(), hp);
    client.Start();
    tb.sim().RunFor(200 * kMillisecond);
    return client.responses();
  };
  EXPECT_GT(rate(1'000), rate(500'000));
}

TEST(HttpWorkload, ConnectionChurnServesRequests) {
  Testbed tb;
  SocketApi* api = tb.stack()->CreateApp("httpd", tb.machine().core(0));
  HttpParams hp;
  hp.concurrency = 8;
  hp.keep_alive = false;  // one request per connection
  HttpServerApp server(api, hp);
  server.Start();
  tb.sim().RunFor(kMillisecond);
  HttpPeerClient client(&tb.peer(), tb.sut_addr(), hp);
  client.Start();
  tb.sim().RunFor(300 * kMillisecond);

  EXPECT_GT(client.responses(), 500u);
  // Every response churned a fresh connection.
  EXPECT_GE(client.connections_opened(), client.responses());
  // The live tables are bounded by the TIME_WAIT population: churn runs at
  // roughly 100k conn/s here and TIME_WAIT is 10 ms, so ~1k linger by
  // design; reaping must prevent anything beyond that.
  EXPECT_LT(tb.peer().tcp().connection_count(), 2500u);
  EXPECT_LT(tb.stack()->tcp()->host().connection_count(), 2500u);
}

TEST(HttpWorkload, ChurnIsSlowerThanKeepAlive) {
  auto rate = [](bool keep_alive) {
    Testbed tb;
    SocketApi* api = tb.stack()->CreateApp("httpd", tb.machine().core(0));
    HttpParams hp;
    hp.concurrency = 16;
    hp.keep_alive = keep_alive;
    HttpServerApp server(api, hp);
    server.Start();
    tb.sim().RunFor(kMillisecond);
    HttpPeerClient client(&tb.peer(), tb.sut_addr(), hp);
    client.Start();
    tb.sim().RunFor(200 * kMillisecond);
    return client.responses();
  };
  EXPECT_GT(rate(true), rate(false)) << "handshakes per request must cost throughput";
}

TEST(UdpFlood, ConstantRateHitsTarget) {
  Testbed tb;
  UdpSutSink sink;
  sink.BindDirect(tb.stack()->udp(), kUdpFloodPort);
  tb.sim().RunFor(kMillisecond);
  UdpPeerFlood::Params fp;
  fp.sut = tb.sut_addr();
  fp.packets_per_sec = 20'000;
  UdpPeerFlood flood(&tb.peer(), fp);
  flood.Start();
  tb.sim().RunFor(500 * kMillisecond);
  EXPECT_NEAR(static_cast<double>(flood.sent()), 10'000.0, 100.0);
}

TEST(UdpFlood, PoissonArrivalsAverageOut) {
  Testbed tb;
  UdpSutSink sink;
  sink.BindDirect(tb.stack()->udp(), kUdpFloodPort);
  tb.sim().RunFor(kMillisecond);
  UdpPeerFlood::Params fp;
  fp.sut = tb.sut_addr();
  fp.packets_per_sec = 20'000;
  fp.poisson = true;
  UdpPeerFlood flood(&tb.peer(), fp);
  flood.Start();
  tb.sim().RunFor(500 * kMillisecond);
  EXPECT_NEAR(static_cast<double>(flood.sent()), 10'000.0, 500.0);
}

TEST(UdpFlood, StopCeasesTraffic) {
  Testbed tb;
  UdpPeerFlood::Params fp;
  fp.sut = tb.sut_addr();
  fp.packets_per_sec = 10'000;
  UdpPeerFlood flood(&tb.peer(), fp);
  flood.Start();
  tb.sim().RunFor(50 * kMillisecond);
  flood.Stop();
  const uint64_t at_stop = flood.sent();
  tb.sim().RunFor(100 * kMillisecond);
  EXPECT_LE(flood.sent(), at_stop + 1);
}

}  // namespace
}  // namespace newtos
