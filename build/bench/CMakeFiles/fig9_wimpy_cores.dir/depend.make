# Empty dependencies file for fig9_wimpy_cores.
# This may be replaced when dependencies are built.
