file(REMOVE_RECURSE
  "CMakeFiles/fig9_wimpy_cores.dir/fig9_wimpy_cores.cc.o"
  "CMakeFiles/fig9_wimpy_cores.dir/fig9_wimpy_cores.cc.o.d"
  "fig9_wimpy_cores"
  "fig9_wimpy_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_wimpy_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
