# Empty dependencies file for tab1_energy.
# This may be replaced when dependencies are built.
