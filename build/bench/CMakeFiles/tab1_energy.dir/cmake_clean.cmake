file(REMOVE_RECURSE
  "CMakeFiles/tab1_energy.dir/tab1_energy.cc.o"
  "CMakeFiles/tab1_energy.dir/tab1_energy.cc.o.d"
  "tab1_energy"
  "tab1_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
