file(REMOVE_RECURSE
  "CMakeFiles/fig3_stage_utilization.dir/fig3_stage_utilization.cc.o"
  "CMakeFiles/fig3_stage_utilization.dir/fig3_stage_utilization.cc.o.d"
  "fig3_stage_utilization"
  "fig3_stage_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_stage_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
