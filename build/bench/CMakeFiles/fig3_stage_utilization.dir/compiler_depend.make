# Empty compiler generated dependencies file for fig3_stage_utilization.
# This may be replaced when dependencies are built.
