file(REMOVE_RECURSE
  "CMakeFiles/fig7_poll_vs_halt.dir/fig7_poll_vs_halt.cc.o"
  "CMakeFiles/fig7_poll_vs_halt.dir/fig7_poll_vs_halt.cc.o.d"
  "fig7_poll_vs_halt"
  "fig7_poll_vs_halt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_poll_vs_halt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
