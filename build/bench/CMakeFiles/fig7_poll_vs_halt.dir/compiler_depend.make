# Empty compiler generated dependencies file for fig7_poll_vs_halt.
# This may be replaced when dependencies are built.
