file(REMOVE_RECURSE
  "CMakeFiles/fig11_recovery_timeline.dir/fig11_recovery_timeline.cc.o"
  "CMakeFiles/fig11_recovery_timeline.dir/fig11_recovery_timeline.cc.o.d"
  "fig11_recovery_timeline"
  "fig11_recovery_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_recovery_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
