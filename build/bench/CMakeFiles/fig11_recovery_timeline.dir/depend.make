# Empty dependencies file for fig11_recovery_timeline.
# This may be replaced when dependencies are built.
