file(REMOVE_RECURSE
  "CMakeFiles/fig12_ping_latency.dir/fig12_ping_latency.cc.o"
  "CMakeFiles/fig12_ping_latency.dir/fig12_ping_latency.cc.o.d"
  "fig12_ping_latency"
  "fig12_ping_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_ping_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
