# Empty compiler generated dependencies file for fig12_ping_latency.
# This may be replaced when dependencies are built.
