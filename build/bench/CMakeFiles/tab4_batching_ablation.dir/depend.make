# Empty dependencies file for tab4_batching_ablation.
# This may be replaced when dependencies are built.
