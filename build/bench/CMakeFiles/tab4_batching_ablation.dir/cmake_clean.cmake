file(REMOVE_RECURSE
  "CMakeFiles/tab4_batching_ablation.dir/tab4_batching_ablation.cc.o"
  "CMakeFiles/tab4_batching_ablation.dir/tab4_batching_ablation.cc.o.d"
  "tab4_batching_ablation"
  "tab4_batching_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_batching_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
