# Empty dependencies file for fig1_ipc_vs_channels.
# This may be replaced when dependencies are built.
