file(REMOVE_RECURSE
  "CMakeFiles/fig1_ipc_vs_channels.dir/fig1_ipc_vs_channels.cc.o"
  "CMakeFiles/fig1_ipc_vs_channels.dir/fig1_ipc_vs_channels.cc.o.d"
  "fig1_ipc_vs_channels"
  "fig1_ipc_vs_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_ipc_vs_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
