# Empty dependencies file for tab3_channel_micro.
# This may be replaced when dependencies are built.
