file(REMOVE_RECURSE
  "CMakeFiles/tab3_channel_micro.dir/tab3_channel_micro.cc.o"
  "CMakeFiles/tab3_channel_micro.dir/tab3_channel_micro.cc.o.d"
  "tab3_channel_micro"
  "tab3_channel_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_channel_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
