file(REMOVE_RECURSE
  "CMakeFiles/fig4_sif_turbo.dir/fig4_sif_turbo.cc.o"
  "CMakeFiles/fig4_sif_turbo.dir/fig4_sif_turbo.cc.o.d"
  "fig4_sif_turbo"
  "fig4_sif_turbo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_sif_turbo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
