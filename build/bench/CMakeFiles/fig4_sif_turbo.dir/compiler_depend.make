# Empty compiler generated dependencies file for fig4_sif_turbo.
# This may be replaced when dependencies are built.
