file(REMOVE_RECURSE
  "CMakeFiles/tab2_vs_monolithic.dir/tab2_vs_monolithic.cc.o"
  "CMakeFiles/tab2_vs_monolithic.dir/tab2_vs_monolithic.cc.o.d"
  "tab2_vs_monolithic"
  "tab2_vs_monolithic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_vs_monolithic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
