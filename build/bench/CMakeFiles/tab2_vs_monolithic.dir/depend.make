# Empty dependencies file for tab2_vs_monolithic.
# This may be replaced when dependencies are built.
