file(REMOVE_RECURSE
  "CMakeFiles/tab5_conn_churn.dir/tab5_conn_churn.cc.o"
  "CMakeFiles/tab5_conn_churn.dir/tab5_conn_churn.cc.o.d"
  "tab5_conn_churn"
  "tab5_conn_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab5_conn_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
