# Empty compiler generated dependencies file for tab5_conn_churn.
# This may be replaced when dependencies are built.
