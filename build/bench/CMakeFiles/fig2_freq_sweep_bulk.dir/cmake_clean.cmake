file(REMOVE_RECURSE
  "CMakeFiles/fig2_freq_sweep_bulk.dir/fig2_freq_sweep_bulk.cc.o"
  "CMakeFiles/fig2_freq_sweep_bulk.dir/fig2_freq_sweep_bulk.cc.o.d"
  "fig2_freq_sweep_bulk"
  "fig2_freq_sweep_bulk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_freq_sweep_bulk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
