# Empty dependencies file for fig2_freq_sweep_bulk.
# This may be replaced when dependencies are built.
