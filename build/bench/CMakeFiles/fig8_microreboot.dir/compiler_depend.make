# Empty compiler generated dependencies file for fig8_microreboot.
# This may be replaced when dependencies are built.
