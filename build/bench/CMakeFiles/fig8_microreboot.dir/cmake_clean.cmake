file(REMOVE_RECURSE
  "CMakeFiles/fig8_microreboot.dir/fig8_microreboot.cc.o"
  "CMakeFiles/fig8_microreboot.dir/fig8_microreboot.cc.o.d"
  "fig8_microreboot"
  "fig8_microreboot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_microreboot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
