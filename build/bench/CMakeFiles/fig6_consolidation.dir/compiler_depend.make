# Empty compiler generated dependencies file for fig6_consolidation.
# This may be replaced when dependencies are built.
