file(REMOVE_RECURSE
  "CMakeFiles/fig6_consolidation.dir/fig6_consolidation.cc.o"
  "CMakeFiles/fig6_consolidation.dir/fig6_consolidation.cc.o.d"
  "fig6_consolidation"
  "fig6_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
