file(REMOVE_RECURSE
  "CMakeFiles/tab6_sack_ablation.dir/tab6_sack_ablation.cc.o"
  "CMakeFiles/tab6_sack_ablation.dir/tab6_sack_ablation.cc.o.d"
  "tab6_sack_ablation"
  "tab6_sack_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab6_sack_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
