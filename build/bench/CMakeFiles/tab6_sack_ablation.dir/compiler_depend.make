# Empty compiler generated dependencies file for tab6_sack_ablation.
# This may be replaced when dependencies are built.
