# Empty dependencies file for poll_policy_test.
# This may be replaced when dependencies are built.
