file(REMOVE_RECURSE
  "CMakeFiles/poll_policy_test.dir/poll_policy_test.cc.o"
  "CMakeFiles/poll_policy_test.dir/poll_policy_test.cc.o.d"
  "poll_policy_test"
  "poll_policy_test.pdb"
  "poll_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poll_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
