file(REMOVE_RECURSE
  "CMakeFiles/ping_test.dir/ping_test.cc.o"
  "CMakeFiles/ping_test.dir/ping_test.cc.o.d"
  "ping_test"
  "ping_test.pdb"
  "ping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
