# Empty compiler generated dependencies file for ping_test.
# This may be replaced when dependencies are built.
