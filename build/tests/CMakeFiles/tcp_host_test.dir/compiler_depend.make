# Empty compiler generated dependencies file for tcp_host_test.
# This may be replaced when dependencies are built.
