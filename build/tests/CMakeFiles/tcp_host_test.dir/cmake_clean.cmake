file(REMOVE_RECURSE
  "CMakeFiles/tcp_host_test.dir/tcp_host_test.cc.o"
  "CMakeFiles/tcp_host_test.dir/tcp_host_test.cc.o.d"
  "tcp_host_test"
  "tcp_host_test.pdb"
  "tcp_host_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
