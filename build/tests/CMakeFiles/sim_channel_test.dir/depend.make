# Empty dependencies file for sim_channel_test.
# This may be replaced when dependencies are built.
