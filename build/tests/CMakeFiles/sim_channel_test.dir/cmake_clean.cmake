file(REMOVE_RECURSE
  "CMakeFiles/sim_channel_test.dir/sim_channel_test.cc.o"
  "CMakeFiles/sim_channel_test.dir/sim_channel_test.cc.o.d"
  "sim_channel_test"
  "sim_channel_test.pdb"
  "sim_channel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
