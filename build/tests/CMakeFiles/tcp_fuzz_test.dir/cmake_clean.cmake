file(REMOVE_RECURSE
  "CMakeFiles/tcp_fuzz_test.dir/tcp_fuzz_test.cc.o"
  "CMakeFiles/tcp_fuzz_test.dir/tcp_fuzz_test.cc.o.d"
  "tcp_fuzz_test"
  "tcp_fuzz_test.pdb"
  "tcp_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
