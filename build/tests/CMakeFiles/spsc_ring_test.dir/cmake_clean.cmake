file(REMOVE_RECURSE
  "CMakeFiles/spsc_ring_test.dir/spsc_ring_test.cc.o"
  "CMakeFiles/spsc_ring_test.dir/spsc_ring_test.cc.o.d"
  "spsc_ring_test"
  "spsc_ring_test.pdb"
  "spsc_ring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsc_ring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
