file(REMOVE_RECURSE
  "CMakeFiles/udp_test.dir/udp_test.cc.o"
  "CMakeFiles/udp_test.dir/udp_test.cc.o.d"
  "udp_test"
  "udp_test.pdb"
  "udp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
