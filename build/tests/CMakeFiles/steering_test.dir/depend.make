# Empty dependencies file for steering_test.
# This may be replaced when dependencies are built.
