file(REMOVE_RECURSE
  "CMakeFiles/steering_test.dir/steering_test.cc.o"
  "CMakeFiles/steering_test.dir/steering_test.cc.o.d"
  "steering_test"
  "steering_test.pdb"
  "steering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
