file(REMOVE_RECURSE
  "CMakeFiles/stack_integration_test.dir/stack_integration_test.cc.o"
  "CMakeFiles/stack_integration_test.dir/stack_integration_test.cc.o.d"
  "stack_integration_test"
  "stack_integration_test.pdb"
  "stack_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
