# Empty compiler generated dependencies file for stack_integration_test.
# This may be replaced when dependencies are built.
