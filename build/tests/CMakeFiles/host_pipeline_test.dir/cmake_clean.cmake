file(REMOVE_RECURSE
  "CMakeFiles/host_pipeline_test.dir/host_pipeline_test.cc.o"
  "CMakeFiles/host_pipeline_test.dir/host_pipeline_test.cc.o.d"
  "host_pipeline_test"
  "host_pipeline_test.pdb"
  "host_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
