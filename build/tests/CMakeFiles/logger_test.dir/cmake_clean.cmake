file(REMOVE_RECURSE
  "CMakeFiles/logger_test.dir/logger_test.cc.o"
  "CMakeFiles/logger_test.dir/logger_test.cc.o.d"
  "logger_test"
  "logger_test.pdb"
  "logger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
