# Empty dependencies file for logger_test.
# This may be replaced when dependencies are built.
