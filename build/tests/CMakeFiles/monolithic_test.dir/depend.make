# Empty dependencies file for monolithic_test.
# This may be replaced when dependencies are built.
