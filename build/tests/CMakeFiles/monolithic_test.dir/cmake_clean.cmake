file(REMOVE_RECURSE
  "CMakeFiles/monolithic_test.dir/monolithic_test.cc.o"
  "CMakeFiles/monolithic_test.dir/monolithic_test.cc.o.d"
  "monolithic_test"
  "monolithic_test.pdb"
  "monolithic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monolithic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
