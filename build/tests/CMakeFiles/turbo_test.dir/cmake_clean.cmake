file(REMOVE_RECURSE
  "CMakeFiles/turbo_test.dir/turbo_test.cc.o"
  "CMakeFiles/turbo_test.dir/turbo_test.cc.o.d"
  "turbo_test"
  "turbo_test.pdb"
  "turbo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
