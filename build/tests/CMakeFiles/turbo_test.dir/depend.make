# Empty dependencies file for turbo_test.
# This may be replaced when dependencies are built.
