# Empty dependencies file for tcp_sharding_test.
# This may be replaced when dependencies are built.
