file(REMOVE_RECURSE
  "CMakeFiles/tcp_sharding_test.dir/tcp_sharding_test.cc.o"
  "CMakeFiles/tcp_sharding_test.dir/tcp_sharding_test.cc.o.d"
  "tcp_sharding_test"
  "tcp_sharding_test.pdb"
  "tcp_sharding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_sharding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
