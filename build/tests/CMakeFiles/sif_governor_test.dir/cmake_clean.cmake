file(REMOVE_RECURSE
  "CMakeFiles/sif_governor_test.dir/sif_governor_test.cc.o"
  "CMakeFiles/sif_governor_test.dir/sif_governor_test.cc.o.d"
  "sif_governor_test"
  "sif_governor_test.pdb"
  "sif_governor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sif_governor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
