# Empty compiler generated dependencies file for sif_governor_test.
# This may be replaced when dependencies are built.
