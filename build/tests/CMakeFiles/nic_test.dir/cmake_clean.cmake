file(REMOVE_RECURSE
  "CMakeFiles/nic_test.dir/nic_test.cc.o"
  "CMakeFiles/nic_test.dir/nic_test.cc.o.d"
  "nic_test"
  "nic_test.pdb"
  "nic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
