# Empty compiler generated dependencies file for newtos_metrics.
# This may be replaced when dependencies are built.
