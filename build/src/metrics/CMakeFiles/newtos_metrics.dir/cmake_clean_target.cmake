file(REMOVE_RECURSE
  "libnewtos_metrics.a"
)
