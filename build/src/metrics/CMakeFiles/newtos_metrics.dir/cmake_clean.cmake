file(REMOVE_RECURSE
  "CMakeFiles/newtos_metrics.dir/histogram.cc.o"
  "CMakeFiles/newtos_metrics.dir/histogram.cc.o.d"
  "CMakeFiles/newtos_metrics.dir/stats.cc.o"
  "CMakeFiles/newtos_metrics.dir/stats.cc.o.d"
  "CMakeFiles/newtos_metrics.dir/table.cc.o"
  "CMakeFiles/newtos_metrics.dir/table.cc.o.d"
  "libnewtos_metrics.a"
  "libnewtos_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newtos_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
