file(REMOVE_RECURSE
  "CMakeFiles/newtos_host.dir/affinity.cc.o"
  "CMakeFiles/newtos_host.dir/affinity.cc.o.d"
  "CMakeFiles/newtos_host.dir/pipeline.cc.o"
  "CMakeFiles/newtos_host.dir/pipeline.cc.o.d"
  "libnewtos_host.a"
  "libnewtos_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newtos_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
