file(REMOVE_RECURSE
  "libnewtos_host.a"
)
