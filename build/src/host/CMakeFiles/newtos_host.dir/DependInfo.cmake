
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/affinity.cc" "src/host/CMakeFiles/newtos_host.dir/affinity.cc.o" "gcc" "src/host/CMakeFiles/newtos_host.dir/affinity.cc.o.d"
  "/root/repo/src/host/pipeline.cc" "src/host/CMakeFiles/newtos_host.dir/pipeline.cc.o" "gcc" "src/host/CMakeFiles/newtos_host.dir/pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chan/CMakeFiles/newtos_chan.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/newtos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
