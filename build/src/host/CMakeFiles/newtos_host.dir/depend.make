# Empty dependencies file for newtos_host.
# This may be replaced when dependencies are built.
