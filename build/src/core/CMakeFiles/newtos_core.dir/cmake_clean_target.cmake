file(REMOVE_RECURSE
  "libnewtos_core.a"
)
