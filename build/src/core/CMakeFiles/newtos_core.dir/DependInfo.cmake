
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/poll_policy.cc" "src/core/CMakeFiles/newtos_core.dir/poll_policy.cc.o" "gcc" "src/core/CMakeFiles/newtos_core.dir/poll_policy.cc.o.d"
  "/root/repo/src/core/sif_governor.cc" "src/core/CMakeFiles/newtos_core.dir/sif_governor.cc.o" "gcc" "src/core/CMakeFiles/newtos_core.dir/sif_governor.cc.o.d"
  "/root/repo/src/core/steering.cc" "src/core/CMakeFiles/newtos_core.dir/steering.cc.o" "gcc" "src/core/CMakeFiles/newtos_core.dir/steering.cc.o.d"
  "/root/repo/src/core/testbed.cc" "src/core/CMakeFiles/newtos_core.dir/testbed.cc.o" "gcc" "src/core/CMakeFiles/newtos_core.dir/testbed.cc.o.d"
  "/root/repo/src/core/turbo.cc" "src/core/CMakeFiles/newtos_core.dir/turbo.cc.o" "gcc" "src/core/CMakeFiles/newtos_core.dir/turbo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/newtos_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/newtos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/newtos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/newtos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/chan/CMakeFiles/newtos_chan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
