# Empty dependencies file for newtos_core.
# This may be replaced when dependencies are built.
