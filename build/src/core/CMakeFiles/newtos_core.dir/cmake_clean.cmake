file(REMOVE_RECURSE
  "CMakeFiles/newtos_core.dir/poll_policy.cc.o"
  "CMakeFiles/newtos_core.dir/poll_policy.cc.o.d"
  "CMakeFiles/newtos_core.dir/sif_governor.cc.o"
  "CMakeFiles/newtos_core.dir/sif_governor.cc.o.d"
  "CMakeFiles/newtos_core.dir/steering.cc.o"
  "CMakeFiles/newtos_core.dir/steering.cc.o.d"
  "CMakeFiles/newtos_core.dir/testbed.cc.o"
  "CMakeFiles/newtos_core.dir/testbed.cc.o.d"
  "CMakeFiles/newtos_core.dir/turbo.cc.o"
  "CMakeFiles/newtos_core.dir/turbo.cc.o.d"
  "libnewtos_core.a"
  "libnewtos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newtos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
