file(REMOVE_RECURSE
  "libnewtos_workload.a"
)
