# Empty compiler generated dependencies file for newtos_workload.
# This may be replaced when dependencies are built.
