file(REMOVE_RECURSE
  "CMakeFiles/newtos_workload.dir/httpd.cc.o"
  "CMakeFiles/newtos_workload.dir/httpd.cc.o.d"
  "CMakeFiles/newtos_workload.dir/iperf.cc.o"
  "CMakeFiles/newtos_workload.dir/iperf.cc.o.d"
  "CMakeFiles/newtos_workload.dir/ping.cc.o"
  "CMakeFiles/newtos_workload.dir/ping.cc.o.d"
  "CMakeFiles/newtos_workload.dir/udp_flood.cc.o"
  "CMakeFiles/newtos_workload.dir/udp_flood.cc.o.d"
  "libnewtos_workload.a"
  "libnewtos_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newtos_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
