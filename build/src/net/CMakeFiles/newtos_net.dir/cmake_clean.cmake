file(REMOVE_RECURSE
  "CMakeFiles/newtos_net.dir/checksum.cc.o"
  "CMakeFiles/newtos_net.dir/checksum.cc.o.d"
  "CMakeFiles/newtos_net.dir/codec.cc.o"
  "CMakeFiles/newtos_net.dir/codec.cc.o.d"
  "CMakeFiles/newtos_net.dir/filter.cc.o"
  "CMakeFiles/newtos_net.dir/filter.cc.o.d"
  "CMakeFiles/newtos_net.dir/packet.cc.o"
  "CMakeFiles/newtos_net.dir/packet.cc.o.d"
  "CMakeFiles/newtos_net.dir/pcap.cc.o"
  "CMakeFiles/newtos_net.dir/pcap.cc.o.d"
  "CMakeFiles/newtos_net.dir/tcp.cc.o"
  "CMakeFiles/newtos_net.dir/tcp.cc.o.d"
  "CMakeFiles/newtos_net.dir/tcp_host.cc.o"
  "CMakeFiles/newtos_net.dir/tcp_host.cc.o.d"
  "CMakeFiles/newtos_net.dir/udp.cc.o"
  "CMakeFiles/newtos_net.dir/udp.cc.o.d"
  "libnewtos_net.a"
  "libnewtos_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newtos_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
