file(REMOVE_RECURSE
  "libnewtos_net.a"
)
