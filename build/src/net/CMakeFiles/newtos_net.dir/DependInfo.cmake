
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/checksum.cc" "src/net/CMakeFiles/newtos_net.dir/checksum.cc.o" "gcc" "src/net/CMakeFiles/newtos_net.dir/checksum.cc.o.d"
  "/root/repo/src/net/codec.cc" "src/net/CMakeFiles/newtos_net.dir/codec.cc.o" "gcc" "src/net/CMakeFiles/newtos_net.dir/codec.cc.o.d"
  "/root/repo/src/net/filter.cc" "src/net/CMakeFiles/newtos_net.dir/filter.cc.o" "gcc" "src/net/CMakeFiles/newtos_net.dir/filter.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/net/CMakeFiles/newtos_net.dir/packet.cc.o" "gcc" "src/net/CMakeFiles/newtos_net.dir/packet.cc.o.d"
  "/root/repo/src/net/pcap.cc" "src/net/CMakeFiles/newtos_net.dir/pcap.cc.o" "gcc" "src/net/CMakeFiles/newtos_net.dir/pcap.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/net/CMakeFiles/newtos_net.dir/tcp.cc.o" "gcc" "src/net/CMakeFiles/newtos_net.dir/tcp.cc.o.d"
  "/root/repo/src/net/tcp_host.cc" "src/net/CMakeFiles/newtos_net.dir/tcp_host.cc.o" "gcc" "src/net/CMakeFiles/newtos_net.dir/tcp_host.cc.o.d"
  "/root/repo/src/net/udp.cc" "src/net/CMakeFiles/newtos_net.dir/udp.cc.o" "gcc" "src/net/CMakeFiles/newtos_net.dir/udp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/newtos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
