# Empty compiler generated dependencies file for newtos_net.
# This may be replaced when dependencies are built.
