file(REMOVE_RECURSE
  "libnewtos_sim.a"
)
