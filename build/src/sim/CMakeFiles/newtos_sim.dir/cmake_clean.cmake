file(REMOVE_RECURSE
  "CMakeFiles/newtos_sim.dir/event_queue.cc.o"
  "CMakeFiles/newtos_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/newtos_sim.dir/logger.cc.o"
  "CMakeFiles/newtos_sim.dir/logger.cc.o.d"
  "CMakeFiles/newtos_sim.dir/random.cc.o"
  "CMakeFiles/newtos_sim.dir/random.cc.o.d"
  "CMakeFiles/newtos_sim.dir/simulation.cc.o"
  "CMakeFiles/newtos_sim.dir/simulation.cc.o.d"
  "CMakeFiles/newtos_sim.dir/time.cc.o"
  "CMakeFiles/newtos_sim.dir/time.cc.o.d"
  "libnewtos_sim.a"
  "libnewtos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newtos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
