# Empty compiler generated dependencies file for newtos_sim.
# This may be replaced when dependencies are built.
