# Empty dependencies file for newtos_hw.
# This may be replaced when dependencies are built.
