file(REMOVE_RECURSE
  "libnewtos_hw.a"
)
