file(REMOVE_RECURSE
  "CMakeFiles/newtos_hw.dir/cpu.cc.o"
  "CMakeFiles/newtos_hw.dir/cpu.cc.o.d"
  "CMakeFiles/newtos_hw.dir/machine.cc.o"
  "CMakeFiles/newtos_hw.dir/machine.cc.o.d"
  "CMakeFiles/newtos_hw.dir/nic.cc.o"
  "CMakeFiles/newtos_hw.dir/nic.cc.o.d"
  "CMakeFiles/newtos_hw.dir/operating_point.cc.o"
  "CMakeFiles/newtos_hw.dir/operating_point.cc.o.d"
  "CMakeFiles/newtos_hw.dir/power.cc.o"
  "CMakeFiles/newtos_hw.dir/power.cc.o.d"
  "libnewtos_hw.a"
  "libnewtos_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newtos_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
