file(REMOVE_RECURSE
  "libnewtos_chan.a"
)
