# Empty compiler generated dependencies file for newtos_chan.
# This may be replaced when dependencies are built.
