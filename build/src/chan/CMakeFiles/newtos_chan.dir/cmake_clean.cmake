file(REMOVE_RECURSE
  "CMakeFiles/newtos_chan.dir/kernel_ipc.cc.o"
  "CMakeFiles/newtos_chan.dir/kernel_ipc.cc.o.d"
  "libnewtos_chan.a"
  "libnewtos_chan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newtos_chan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
