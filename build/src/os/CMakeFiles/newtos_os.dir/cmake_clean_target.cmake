file(REMOVE_RECURSE
  "libnewtos_os.a"
)
