# Empty dependencies file for newtos_os.
# This may be replaced when dependencies are built.
