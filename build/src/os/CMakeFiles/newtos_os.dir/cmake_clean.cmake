file(REMOVE_RECURSE
  "CMakeFiles/newtos_os.dir/app_process.cc.o"
  "CMakeFiles/newtos_os.dir/app_process.cc.o.d"
  "CMakeFiles/newtos_os.dir/driver_server.cc.o"
  "CMakeFiles/newtos_os.dir/driver_server.cc.o.d"
  "CMakeFiles/newtos_os.dir/ip_server.cc.o"
  "CMakeFiles/newtos_os.dir/ip_server.cc.o.d"
  "CMakeFiles/newtos_os.dir/microreboot.cc.o"
  "CMakeFiles/newtos_os.dir/microreboot.cc.o.d"
  "CMakeFiles/newtos_os.dir/monolithic_stack.cc.o"
  "CMakeFiles/newtos_os.dir/monolithic_stack.cc.o.d"
  "CMakeFiles/newtos_os.dir/peer_host.cc.o"
  "CMakeFiles/newtos_os.dir/peer_host.cc.o.d"
  "CMakeFiles/newtos_os.dir/pf_server.cc.o"
  "CMakeFiles/newtos_os.dir/pf_server.cc.o.d"
  "CMakeFiles/newtos_os.dir/server.cc.o"
  "CMakeFiles/newtos_os.dir/server.cc.o.d"
  "CMakeFiles/newtos_os.dir/stack.cc.o"
  "CMakeFiles/newtos_os.dir/stack.cc.o.d"
  "CMakeFiles/newtos_os.dir/syscall_server.cc.o"
  "CMakeFiles/newtos_os.dir/syscall_server.cc.o.d"
  "CMakeFiles/newtos_os.dir/tcp_server.cc.o"
  "CMakeFiles/newtos_os.dir/tcp_server.cc.o.d"
  "CMakeFiles/newtos_os.dir/udp_server.cc.o"
  "CMakeFiles/newtos_os.dir/udp_server.cc.o.d"
  "libnewtos_os.a"
  "libnewtos_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newtos_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
