
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/app_process.cc" "src/os/CMakeFiles/newtos_os.dir/app_process.cc.o" "gcc" "src/os/CMakeFiles/newtos_os.dir/app_process.cc.o.d"
  "/root/repo/src/os/driver_server.cc" "src/os/CMakeFiles/newtos_os.dir/driver_server.cc.o" "gcc" "src/os/CMakeFiles/newtos_os.dir/driver_server.cc.o.d"
  "/root/repo/src/os/ip_server.cc" "src/os/CMakeFiles/newtos_os.dir/ip_server.cc.o" "gcc" "src/os/CMakeFiles/newtos_os.dir/ip_server.cc.o.d"
  "/root/repo/src/os/microreboot.cc" "src/os/CMakeFiles/newtos_os.dir/microreboot.cc.o" "gcc" "src/os/CMakeFiles/newtos_os.dir/microreboot.cc.o.d"
  "/root/repo/src/os/monolithic_stack.cc" "src/os/CMakeFiles/newtos_os.dir/monolithic_stack.cc.o" "gcc" "src/os/CMakeFiles/newtos_os.dir/monolithic_stack.cc.o.d"
  "/root/repo/src/os/peer_host.cc" "src/os/CMakeFiles/newtos_os.dir/peer_host.cc.o" "gcc" "src/os/CMakeFiles/newtos_os.dir/peer_host.cc.o.d"
  "/root/repo/src/os/pf_server.cc" "src/os/CMakeFiles/newtos_os.dir/pf_server.cc.o" "gcc" "src/os/CMakeFiles/newtos_os.dir/pf_server.cc.o.d"
  "/root/repo/src/os/server.cc" "src/os/CMakeFiles/newtos_os.dir/server.cc.o" "gcc" "src/os/CMakeFiles/newtos_os.dir/server.cc.o.d"
  "/root/repo/src/os/stack.cc" "src/os/CMakeFiles/newtos_os.dir/stack.cc.o" "gcc" "src/os/CMakeFiles/newtos_os.dir/stack.cc.o.d"
  "/root/repo/src/os/syscall_server.cc" "src/os/CMakeFiles/newtos_os.dir/syscall_server.cc.o" "gcc" "src/os/CMakeFiles/newtos_os.dir/syscall_server.cc.o.d"
  "/root/repo/src/os/tcp_server.cc" "src/os/CMakeFiles/newtos_os.dir/tcp_server.cc.o" "gcc" "src/os/CMakeFiles/newtos_os.dir/tcp_server.cc.o.d"
  "/root/repo/src/os/udp_server.cc" "src/os/CMakeFiles/newtos_os.dir/udp_server.cc.o" "gcc" "src/os/CMakeFiles/newtos_os.dir/udp_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/newtos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/newtos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/newtos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/chan/CMakeFiles/newtos_chan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
