# Empty dependencies file for explore.
# This may be replaced when dependencies are built.
