file(REMOVE_RECURSE
  "CMakeFiles/explore.dir/explore.cpp.o"
  "CMakeFiles/explore.dir/explore.cpp.o.d"
  "explore"
  "explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
