# Empty dependencies file for dvfs_steering.
# This may be replaced when dependencies are built.
