file(REMOVE_RECURSE
  "CMakeFiles/dvfs_steering.dir/dvfs_steering.cpp.o"
  "CMakeFiles/dvfs_steering.dir/dvfs_steering.cpp.o.d"
  "dvfs_steering"
  "dvfs_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvfs_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
