file(REMOVE_RECURSE
  "CMakeFiles/big_little.dir/big_little.cpp.o"
  "CMakeFiles/big_little.dir/big_little.cpp.o.d"
  "big_little"
  "big_little.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/big_little.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
