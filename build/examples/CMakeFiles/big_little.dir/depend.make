# Empty dependencies file for big_little.
# This may be replaced when dependencies are built.
