
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/big_little.cpp" "examples/CMakeFiles/big_little.dir/big_little.cpp.o" "gcc" "examples/CMakeFiles/big_little.dir/big_little.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/newtos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/newtos_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/newtos_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/newtos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/newtos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/newtos_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/newtos_host.dir/DependInfo.cmake"
  "/root/repo/build/src/chan/CMakeFiles/newtos_chan.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/newtos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
