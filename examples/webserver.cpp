// Webserver scenario: a lighttpd-style server under closed-loop load, with
// the stack running at three different speeds.
//
//   $ ./webserver
//
// Shows the workload-facing API (HttpServerApp / HttpPeerClient) and that
// request latency barely moves when the OS cores slow from 3.6 to 1.6 GHz —
// the paper's "the stack doesn't need big cores" point, on the interactive
// workload where you'd least expect it.

#include <cstdio>

#include "src/newtos.h"

using namespace newtos;

namespace {

void ServeAt(FreqKhz stack_freq) {
  Testbed tb;
  DedicatedSlowPlan(*tb.stack(), stack_freq, 3'600'000 * kKhz).Apply(tb.machine());

  SocketApi* api = tb.stack()->CreateApp("httpd", tb.machine().core(0));
  HttpParams params;
  params.concurrency = 16;
  params.response_bytes = 8 * 1024;
  params.server_compute_cycles = 5'000;
  HttpServerApp server(api, params);
  server.Start();
  tb.sim().RunFor(kMillisecond);

  HttpPeerClient client(&tb.peer(), tb.sut_addr(), params);
  client.Start();

  tb.sim().RunFor(100 * kMillisecond);  // warm up
  client.ResetWindow(tb.sim().Now());
  tb.sim().RunFor(300 * kMillisecond);

  const SimTime now = tb.sim().Now();
  std::printf("stack @ %.1f GHz:  %7.0f req/s   p50 %7.1f us   p99 %7.1f us\n",
              ToGhz(stack_freq), client.window().EventsPerSec(now),
              static_cast<double>(client.latency().P50()) / kMicrosecond,
              static_cast<double>(client.latency().P99()) / kMicrosecond);
}

}  // namespace

int main() {
  std::printf("lighttpd-style closed loop: 16 connections, 8 KiB responses\n\n");
  ServeAt(3'600'000 * kKhz);
  ServeAt(1'600'000 * kKhz);
  ServeAt(800'000 * kKhz);
  std::printf(
      "\nSlowing the stack 2.25x (3.6 -> 1.6 GHz) costs well under a quarter of\n"
      "the request rate and ~25 us of median latency; only at 0.8 GHz does the\n"
      "stack really queue. The interactive path tolerates slow cores too.\n");
  return 0;
}
