// Adaptive core steering: the SifGovernor in action.
//
//   $ ./dvfs_steering
//
// Starts the stack at full clock with no traffic; the governor walks the
// idle system cores down to their floor and boosts the application core
// with the freed power budget. Then bulk traffic arrives and the governor
// walks the TCP/driver cores back up just enough to carry it. The printed
// trace is the controller's own history.

#include <cstdio>

#include "src/newtos.h"

using namespace newtos;

int main() {
  TestbedOptions opt;
  opt.machine.chip_power_budget_watts = 42.0;
  Testbed tb(opt);

  std::vector<Core*> system_cores{tb.machine().core(1), tb.machine().core(2),
                                  tb.machine().core(3)};
  std::vector<Core*> app_cores{tb.machine().core(0)};
  tb.machine().core(4)->SetFrequency(600'000 * kKhz);  // park the spare

  SifParams params;
  params.period = 2 * kMillisecond;
  SifGovernor governor(&tb.sim(), &tb.machine(), system_cores, app_cores, params);
  governor.Start();

  // Phase 1: idle machine.
  tb.sim().RunFor(40 * kMillisecond);

  // Phase 2: full line-rate bulk traffic appears.
  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params ip;
  ip.dst = tb.peer_addr();
  IperfSender sender(api, ip);
  IperfPeerSink sink(&tb.peer());
  sender.Start();
  tb.sim().RunFor(80 * kMillisecond);
  governor.Stop();

  std::printf("time      drv GHz  ip GHz   tcp GHz  app GHz  provisioned W\n");
  size_t step = governor.history().size() / 24 + 1;
  for (size_t i = 0; i < governor.history().size(); i += step) {
    const auto& s = governor.history()[i];
    std::printf("%-9s %-8.1f %-8.1f %-8.1f %-8.1f %.1f\n", FormatTime(s.at).c_str(),
                ToGhz(s.system_freq[0]), ToGhz(s.system_freq[1]), ToGhz(s.system_freq[2]),
                ToGhz(s.app_freq), s.provisioned_watts);
  }

  sink.window().Reset(tb.sim().Now());
  tb.sim().RunFor(100 * kMillisecond);
  std::printf("\nfinal goodput: %.2f Gbit/s with the governor-chosen plan\n",
              sink.window().GbitsPerSec(tb.sim().Now()));
  std::printf("(idle phase: system cores sink to the floor, app core turbos;\n"
              " loaded phase: only the cores the load needs climb back up)\n");
  return 0;
}
