// Quickstart: bring up the simulated testbed, stream TCP through the
// multiserver stack, and print what the machine did.
//
//   $ ./quickstart
//
// Walks through the core API in ~40 lines: Testbed (machine + peer + stack),
// a steering plan (stack cores at 2.4 GHz), an iperf-style workload, and the
// measurement accessors.

#include <cstdio>

#include "src/newtos.h"

using namespace newtos;

int main() {
  // A 5-core machine with a 10 GbE NIC, its multiserver network stack, and
  // an infinitely-fast peer host on the other end of the link.
  Testbed tb;

  // The paper's configuration: dedicated stack cores, scaled down to
  // 2.4 GHz; the application core stays at base clock.
  DedicatedSlowPlan(*tb.stack(), 2'400'000 * kKhz, 3'600'000 * kKhz).Apply(tb.machine());

  // An application pinned to core 0, streaming bulk TCP to the peer.
  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params params;
  params.dst = tb.peer_addr();
  IperfSender sender(api, params);
  IperfPeerSink sink(&tb.peer());
  sender.Start();

  // Warm up past the handshake and slow start, then measure 200 ms.
  tb.sim().RunFor(150 * kMillisecond);
  tb.machine().ResetStatsAt(tb.sim().Now());
  sink.window().Reset(tb.sim().Now());
  tb.sim().RunFor(200 * kMillisecond);

  const SimTime now = tb.sim().Now();
  std::printf("simulated time:   %s  (%llu events)\n", FormatTime(now).c_str(),
              static_cast<unsigned long long>(tb.sim().events_processed()));
  std::printf("goodput:          %.2f Gbit/s\n", sink.window().GbitsPerSec(now));
  std::printf("package power:    %.1f W\n", tb.machine().PackageJoulesAt(now) / 0.2);
  for (int i = 0; i < tb.machine().num_cores(); ++i) {
    const Core* c = tb.machine().core(i);
    std::printf("  core %d @ %.1f GHz  util %.0f%%\n", i, ToGhz(c->frequency()),
                100.0 * c->UtilizationSince(now - 200 * kMillisecond, now));
  }
  std::printf("tcp server:       %llu segs in, %llu segs out\n",
              static_cast<unsigned long long>(tb.stack()->tcp()->segments_in()),
              static_cast<unsigned long long>(tb.stack()->tcp()->segments_out()));
  return 0;
}
