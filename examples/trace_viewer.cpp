// Trace viewer: record the paper's fig. 2 contrast as Perfetto timelines.
//
//   $ ./trace_viewer
//   $ # open https://ui.perfetto.dev and load trace_fig2_3.6ghz.json,
//   $ # then trace_fig2_1.2ghz.json, and compare the stack-core tracks
//
// Runs the bulk-TCP transmit scenario twice — stack cores at 3.6 GHz, then
// at 1.2 GHz — with the full tracing subsystem enabled, and exports each run
// as a Chrome-trace JSON the Perfetto UI loads directly. The fast run shows
// stack cores that are mostly idle gaps between short bursts; the slow run
// shows the same stages stretched into near-solid lanes — the paper's "slower
// is fine" picture, but zoomable: burst spans nest the per-message handler
// spans, channel hops connect producer to consumer with flow arrows, and the
// counter tracks chart utilization, ring depth, and queue length.
//
// Also writes a folded-stack profile per run (*.folded) and prints the
// per-stage latency table the profile aggregates.

#include <cstdio>
#include <iostream>

#include "src/newtos.h"

using namespace newtos;

namespace {

void RunOnce(FreqKhz stack_khz, const char* tag) {
  Testbed tb;
  MultiserverStack* stack = tb.stack();
  DedicatedSlowPlan(*stack, stack_khz, 3'600'000 * kKhz).Apply(tb.machine());

  StackTracer::Options topt;
  topt.ring_capacity = 1 << 19;
  StackTracer tracer(&tb.sim(), stack, topt);

  SocketApi* api = stack->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params params;
  params.dst = tb.peer_addr();
  IperfSender sender(api, params);
  IperfPeerSink sink(&tb.peer());
  sender.Start();

  // Warm up untraced (connection setup and slow start are not the story),
  // then record a 2 ms steady-state slice — small enough that the ring keeps
  // every event and the JSON stays a quick load in the Perfetto UI.
  tb.sim().RunFor(150 * kMillisecond);
  sink.window().Reset(tb.sim().Now());
  tracer.Enable();
  tb.sim().RunFor(2 * kMillisecond);
  tracer.Disable();
  tb.sim().RunFor(48 * kMillisecond);

  const double gbps = sink.window().GbitsPerSec(tb.sim().Now());
  char trace_path[64];
  char folded_path[64];
  std::snprintf(trace_path, sizeof(trace_path), "trace_fig2_%sghz.json", tag);
  std::snprintf(folded_path, sizeof(folded_path), "trace_fig2_%sghz.folded", tag);

  std::printf("stack @ %s GHz: %5.2f Gbit/s, %llu trace events (%llu dropped)\n",
              tag, gbps, static_cast<unsigned long long>(tracer.recorder().recorded()),
              static_cast<unsigned long long>(tracer.recorder().dropped()));
  if (!tracer.ExportChromeTrace(trace_path)) {
    std::fprintf(stderr, "  failed to write %s\n", trace_path);
  } else {
    std::printf("  wrote %s (load in https://ui.perfetto.dev)\n", trace_path);
  }
  if (!tracer.ExportFolded(folded_path)) {
    std::fprintf(stderr, "  failed to write %s\n", folded_path);
  } else {
    std::printf("  wrote %s (flamegraph.pl compatible)\n", folded_path);
  }

  FoldedStacks profile(tracer.recorder());
  profile.LatencyTable().Print(std::cout,
                               std::string("per-stage time, 2 ms slice @ ") + tag + " GHz");
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Recording the fig. 2 endpoints as Perfetto timelines...\n\n");
  RunOnce(3'600'000 * kKhz, "3.6");
  RunOnce(1'200'000 * kKhz, "1.2");
  std::printf(
      "Compare the two JSONs in the Perfetto UI: at 3.6 GHz the stack-core\n"
      "tracks are sparse bursts separated by idle; at 1.2 GHz each burst\n"
      "stretches ~3x and the lanes close up — same goodput, fuller pipeline.\n");
  return 0;
}
