// Fault storm: a bulk transfer over slow stack cores rides out a randomized
// barrage of faults.
//
//   $ ./fault_storm
//
// The stack stages run at 1.2 GHz (the paper's "slower is fine" operating
// point) while the app core stays at 3.6 GHz. A seeded FaultPlan then throws
// the whole taxonomy at the stack at once: channel message drops and
// duplicates on the IP rings, wire bit flips on both NICs, and a hang, a
// livelock, and a crash staggered across the driver, IP, and TCP servers.
// The watchdog's heartbeats detect each silent server and escalate to the
// microreboot manager; checksum verification discards every corrupted
// packet before it can reach a socket.
//
// The printed log shows each injection, each watchdog detection, and each
// recovery incident — and the transfer's goodput before, during, and after
// the storm. Same binary, same output, every run: the storm is a pure
// function of the seed.
//
// The storm second is also recorded with the tracing subsystem and exported
// to trace_fault_storm.json — load it at https://ui.perfetto.dev to see the
// hang/livelock/crash outages as async spans on the "recovery" track, the
// heartbeat traffic on the watchdog track, and the retransmission bursts
// that refill the pipeline after each microreboot.

#include <cstdio>

#include "src/newtos.h"

using namespace newtos;

namespace {

double WindowGbps(IperfPeerSink& sink, Testbed& tb, SimTime window) {
  sink.window().Reset(tb.sim().Now());
  tb.sim().RunFor(window);
  return sink.window().GbitsPerSec(tb.sim().Now());
}

Cycles RestartFor(const StackConfig& cfg, const std::string& name) {
  if (name.find("driver") != std::string::npos) return cfg.driver.restart_cycles;
  if (name.find("tcp") != std::string::npos) return cfg.tcp.restart_cycles;
  if (name.find("udp") != std::string::npos) return cfg.udp.restart_cycles;
  if (name.find("pf") != std::string::npos) return cfg.pf.restart_cycles;
  if (name.find("syscall") != std::string::npos) return cfg.syscall.restart_cycles;
  return cfg.ip.restart_cycles;
}

}  // namespace

int main() {
  Testbed tb;
  MultiserverStack* stack = tb.stack();

  // Slow stack plane, fast app plane.
  DedicatedSlowPlan(*stack, 1'200'000 * kKhz, 3'600'000 * kKhz).Apply(tb.machine());
  stack->tcp()->set_checkpointing(true);

  // Recovery plane: heartbeat watchdog on the app core, every stage watched.
  MicrorebootManager mgr(&tb.sim());
  WatchdogServer::Params wd;
  WatchdogServer watchdog(&tb.sim(), &mgr, wd);
  watchdog.BindCore(tb.machine().core(stack->config().watchdog_core));
  for (Server* s : stack->SystemServers()) {
    watchdog.Watch(s, RestartFor(stack->config(), s->name()));
  }

  // Tracing: the stack tracer wires every stage; the watchdog joins after
  // its Watch() calls (so its input rings exist) and the microreboot manager
  // routes outage windows onto the "recovery" track.
  StackTracer tracer(&tb.sim(), stack);
  tracer.AddServer(&watchdog);
  tracer.AddMicroreboot(&mgr);

  // The storm: background channel/wire noise plus three staggered
  // server-level faults, all from one seed.
  FaultPlan plan;
  plan.seed = 2013;
  FaultSpec s;
  s.cls = FaultClass::kChanDrop;
  s.target = "ip";
  s.probability = 0.002;
  plan.faults.push_back(s);
  s = FaultSpec();
  s.cls = FaultClass::kChanDuplicate;
  s.target = "ip";
  s.probability = 0.002;
  plan.faults.push_back(s);
  s = FaultSpec();
  s.cls = FaultClass::kWireBitFlip;
  s.probability = 0.0002;
  plan.faults.push_back(s);
  s = FaultSpec();
  s.cls = FaultClass::kServerHang;
  s.target = "ip";
  s.at = 300 * kMillisecond;
  plan.faults.push_back(s);
  s = FaultSpec();
  s.cls = FaultClass::kServerLivelock;
  s.target = "driver";
  s.at = 500 * kMillisecond;
  plan.faults.push_back(s);
  s = FaultSpec();
  s.cls = FaultClass::kServerCrash;
  s.target = "tcp";
  s.at = 700 * kMillisecond;
  plan.faults.push_back(s);

  FaultInjector injector(&tb.sim(), std::move(plan));
  injector.Arm(stack);
  injector.ArmWire(tb.machine().nic());
  injector.ArmWire(tb.peer().nic());

  // Workload: bulk iperf into the peer sink.
  SocketApi* api = stack->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params params;
  params.dst = tb.peer_addr();
  IperfSender sender(api, params);
  IperfPeerSink sink(&tb.peer());

  watchdog.Start();
  sender.Start();
  tb.sim().RunFor(200 * kMillisecond);

  std::printf("stack cores at 1.2 GHz, app core at 3.6 GHz\n\n");
  std::printf("calm before the storm:  %5.2f Gbit/s\n", WindowGbps(sink, tb, 100 * kMillisecond));
  tracer.Enable();
  std::printf("storm second:           %5.2f Gbit/s\n", WindowGbps(sink, tb, kSecond));
  tracer.Disable();
  std::printf("after the storm:        %5.2f Gbit/s\n", WindowGbps(sink, tb, 200 * kMillisecond));

  std::printf("\ninjections (server-level):\n");
  for (const auto& line : injector.injections()) {
    std::printf("  %s\n", line.c_str());
  }
  const auto& ctr = injector.counters();
  std::printf("background noise: %llu drops, %llu dups, %llu wire flips\n",
              static_cast<unsigned long long>(ctr.chan_drops),
              static_cast<unsigned long long>(ctr.chan_dups),
              static_cast<unsigned long long>(ctr.wire_flips));

  std::printf("\nwatchdog detections (deadline %s):\n",
              FormatTime(watchdog.DetectionDeadline()).c_str());
  for (const auto& d : watchdog.detections()) {
    std::printf("  %-7s silent since %-10s escalated at %s\n", d.server.c_str(),
                FormatTime(d.last_ack).c_str(), FormatTime(d.detected_at).c_str());
  }

  std::printf("\nrecovery incidents:\n");
  for (const auto& inc : mgr.incidents()) {
    std::printf("  %-7s down at %-10s recovered +%s\n", inc.server.c_str(),
                FormatTime(inc.crashed_at).c_str(), FormatTime(inc.RecoveryTime()).c_str());
  }

  uint64_t corrupt_accepted = 0;
  for (TcpConnection* c : stack->tcp()->host().Connections()) {
    corrupt_accepted += c->stats().corrupt_segments_accepted;
  }
  for (TcpConnection* c : tb.peer().tcp().Connections()) {
    corrupt_accepted += c->stats().corrupt_segments_accepted;
  }
  std::printf("\ncorrupt segments accepted by TCP: %llu (checksums dropped the rest)\n",
              static_cast<unsigned long long>(corrupt_accepted));
  if (tracer.ExportChromeTrace("trace_fault_storm.json")) {
    std::printf("\nwrote trace_fault_storm.json (last %llu of %llu events; "
                "load in https://ui.perfetto.dev)\n",
                static_cast<unsigned long long>(tracer.recorder().size()),
                static_cast<unsigned long long>(tracer.recorder().recorded()));
  } else {
    std::fprintf(stderr, "\nfailed to write trace_fault_storm.json\n");
  }

  std::printf("\nThe transfer survived the storm: every hung or crashed server was\n"
              "detected by heartbeat silence and microrebooted; retransmission\n"
              "papered over the drops, flips, and the recovery gaps.\n");
  return 0;
}
