// Crash recovery: kill stack servers mid-transfer and watch them come back.
//
//   $ ./crash_recovery
//
// Demonstrates the reliability half of the system: fault injection via
// MicrorebootManager, per-server recovery hooks (the IP server is stateless,
// the TCP server optionally checkpoints its connection state), and that a
// bulk transfer rides out both incidents.

#include <cstdio>

#include "src/newtos.h"

using namespace newtos;

namespace {

double WindowGbps(IperfPeerSink& sink, Testbed& tb, SimTime window) {
  sink.window().Reset(tb.sim().Now());
  tb.sim().RunFor(window);
  return sink.window().GbitsPerSec(tb.sim().Now());
}

}  // namespace

int main() {
  Testbed tb;
  tb.stack()->tcp()->set_checkpointing(true);  // survive TCP-server reboots

  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params params;
  params.dst = tb.peer_addr();
  IperfSender sender(api, params);
  IperfPeerSink sink(&tb.peer());
  sender.Start();
  tb.sim().RunFor(200 * kMillisecond);

  std::printf("steady state:            %5.2f Gbit/s\n", WindowGbps(sink, tb, 200 * kMillisecond));

  MicrorebootManager mgr(&tb.sim());
  const StackConfig& cfg = tb.stack()->config();

  // Incident 1: the (stateless) IP server dies.
  mgr.InjectCrash(tb.stack()->ip(), tb.sim().Now() + 10 * kMillisecond, cfg.ip.restart_cycles);
  std::printf("ip crash second:         %5.2f Gbit/s\n", WindowGbps(sink, tb, kSecond));

  // Incident 2: the (stateful, checkpointed) TCP server dies.
  mgr.InjectCrash(tb.stack()->tcp(), tb.sim().Now() + 10 * kMillisecond, cfg.tcp.restart_cycles);
  std::printf("tcp crash second:        %5.2f Gbit/s\n", WindowGbps(sink, tb, kSecond));

  std::printf("recovered steady state:  %5.2f Gbit/s\n", WindowGbps(sink, tb, 200 * kMillisecond));

  std::printf("\nincident log:\n");
  for (const auto& inc : mgr.incidents()) {
    std::printf("  %-7s crashed %-10s detected +%s  recovered +%s\n", inc.server.c_str(),
                FormatTime(inc.crashed_at).c_str(),
                FormatTime(inc.detected_at - inc.crashed_at).c_str(),
                FormatTime(inc.RecoveryTime()).c_str());
  }
  std::printf("\nThe transfer survived both microreboots; TCP retransmission filled\n"
              "the gaps, and the checkpointed TCP server kept its connections.\n");
  return 0;
}
