// explore — an interactive console for the simulated testbed.
//
//   $ ./explore                 # type `help` for commands
//   $ echo "load\nrun 200\nstat" | ./explore
//
// Drives the full system by hand: start workloads, re-steer frequencies,
// crash servers, advance simulated time, and inspect counters. Useful for
// building intuition about the model before reading the benches.

#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "src/newtos.h"

using namespace newtos;

namespace {

class Explorer {
 public:
  Explorer() { std::cout << "testbed up: 5 cores @3.6 GHz, 10 GbE, multiserver stack\n"; }

  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd.empty() || cmd[0] == '#') {
      return true;
    }
    if (cmd == "quit" || cmd == "exit") {
      return false;
    }
    if (cmd == "help") {
      Help();
    } else if (cmd == "load") {
      Load();
    } else if (cmd == "run") {
      double ms = 100;
      in >> ms;
      tb_.sim().RunFor(static_cast<SimTime>(ms * kMillisecond));
      std::cout << "t = " << FormatTime(tb_.sim().Now()) << "\n";
    } else if (cmd == "freq") {
      int core = -1;
      double ghz = 0;
      in >> core >> ghz;
      if (core < 0 || core >= tb_.machine().num_cores() || ghz <= 0) {
        std::cout << "usage: freq <core 0-4> <ghz>\n";
      } else {
        tb_.machine().core(core)->SetFrequency(static_cast<FreqKhz>(ghz * kGhz));
        std::cout << "core " << core << " -> "
                  << ToGhz(tb_.machine().core(core)->frequency()) << " GHz\n";
      }
    } else if (cmd == "crash") {
      std::string who;
      in >> who;
      Crash(who);
    } else if (cmd == "stat") {
      Stat();
    } else {
      std::cout << "unknown command '" << cmd << "' (try: help)\n";
    }
    return true;
  }

 private:
  void Help() {
    std::cout << "  load            start an iperf bulk transfer to the peer\n"
                 "  run [ms]        advance simulated time (default 100 ms)\n"
                 "  freq <core> <g> set a core's frequency in GHz\n"
                 "  crash <server>  crash+auto-recover driver|ip|tcp|udp\n"
                 "  stat            goodput, per-core state, power\n"
                 "  quit            leave\n";
  }

  void Load() {
    if (sender_) {
      std::cout << "already loaded\n";
      return;
    }
    api_ = tb_.stack()->CreateApp("iperf", tb_.machine().core(0));
    IperfSender::Params sp;
    sp.dst = tb_.peer_addr();
    sender_ = std::make_unique<IperfSender>(api_, sp);
    sink_ = std::make_unique<IperfPeerSink>(&tb_.peer());
    sender_->Start();
    std::cout << "iperf started (run some time, then `stat`)\n";
  }

  void Crash(const std::string& who) {
    Server* victim = nullptr;
    Cycles reboot = 0;
    const StackConfig& cfg = tb_.stack()->config();
    if (who == "driver") {
      victim = tb_.stack()->driver();
      reboot = cfg.driver.restart_cycles;
    } else if (who == "ip") {
      victim = tb_.stack()->ip();
      reboot = cfg.ip.restart_cycles;
    } else if (who == "tcp") {
      victim = tb_.stack()->tcp();
      reboot = cfg.tcp.restart_cycles;
    } else if (who == "udp") {
      victim = tb_.stack()->udp();
      reboot = cfg.udp.restart_cycles;
    } else {
      std::cout << "usage: crash driver|ip|tcp|udp\n";
      return;
    }
    mgr_.InjectCrash(victim, tb_.sim().Now() + kMicrosecond, reboot);
    std::cout << who << " will crash now and auto-recover (watch `stat` after `run`)\n";
  }

  void Stat() {
    const SimTime now = tb_.sim().Now();
    if (sink_) {
      std::cout << "  goodput (since last stat): "
                << sink_->window().GbitsPerSec(now) << " Gbit/s\n";
      sink_->window().Reset(now);
    }
    for (int i = 0; i < tb_.machine().num_cores(); ++i) {
      Core* c = tb_.machine().core(i);
      std::cout << "  core " << i << ": " << ToGhz(c->frequency()) << " GHz, "
                << c->work_items() << " work items\n";
    }
    std::cout << "  package: " << tb_.machine().PackageWatts() << " W now\n";
    for (Server* s : tb_.stack()->SystemServers()) {
      std::cout << "  " << s->name() << ": " << s->messages_processed() << " msgs"
                << (s->crashed() ? "  [CRASHED]" : "") << "\n";
    }
    for (const auto& inc : mgr_.incidents()) {
      std::cout << "  incident: " << inc.server << " recovered in "
                << (inc.recovered_at ? FormatTime(inc.RecoveryTime()) : "(pending)") << "\n";
    }
  }

  Testbed tb_;
  MicrorebootManager mgr_{&tb_.sim()};
  SocketApi* api_ = nullptr;
  std::unique_ptr<IperfSender> sender_;
  std::unique_ptr<IperfPeerSink> sink_;
};

}  // namespace

int main() {
  Explorer ex;
  std::string line;
  std::cout << "> " << std::flush;
  while (std::getline(std::cin, line)) {
    if (!ex.Dispatch(line)) {
      break;
    }
    std::cout << "> " << std::flush;
  }
  std::cout << "bye\n";
  return 0;
}
