// Heterogeneous multicore: the paper's title scenario, end to end.
//
//   $ ./big_little
//
// Builds a 2-big + 3-little machine, steers every system server onto the
// little cores, and runs bulk TCP and a web workload side by side against
// the homogeneous all-big configuration — showing that the reliable stack's
// cycles can come from cheap silicon.

#include <cstdio>

#include "src/newtos.h"

using namespace newtos;

namespace {

struct Outcome {
  double gbps = 0.0;
  double watts = 0.0;
};

Outcome RunBulk(bool heterogeneous) {
  TestbedOptions opt;
  if (heterogeneous) {
    opt.machine = BigLittleParams(2, 3);
  }
  Testbed tb(opt);
  if (heterogeneous) {
    WimpyStackPlan(*tb.stack(), 1'600'000 * kKhz, 3'600'000 * kKhz).Apply(tb.machine());
    tb.machine().core(1)->SetIdleActivity(CoreActivity::kHalted);  // spare big core sleeps
  } else {
    DedicatedPlan(*tb.stack(), 3'600'000 * kKhz).Apply(tb.machine());
  }

  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params params;
  params.dst = tb.peer_addr();
  IperfSender sender(api, params);
  IperfPeerSink sink(&tb.peer());
  sender.Start();

  tb.sim().RunFor(150 * kMillisecond);
  tb.machine().ResetStatsAt(tb.sim().Now());
  sink.window().Reset(tb.sim().Now());
  tb.sim().RunFor(200 * kMillisecond);

  Outcome o;
  o.gbps = sink.window().GbitsPerSec(tb.sim().Now());
  o.watts = tb.machine().PackageJoulesAt(tb.sim().Now()) / 0.2;
  return o;
}

}  // namespace

int main() {
  std::printf("bulk TCP through the reliable multiserver stack:\n\n");
  const Outcome big = RunBulk(/*heterogeneous=*/false);
  std::printf("  5 big cores, stack on 3 big @3.6 GHz:     %5.2f Gbit/s at %5.1f W\n", big.gbps,
              big.watts);
  const Outcome hetero = RunBulk(/*heterogeneous=*/true);
  std::printf("  2 big + 3 little, stack on little @1.6:   %5.2f Gbit/s at %5.1f W\n",
              hetero.gbps, hetero.watts);
  std::printf("\n  -> %.0f%% of the throughput at %.0f%% of the power; both big cores\n"
              "     remain free for applications. Slower silicon, same service.\n",
              100.0 * hetero.gbps / big.gbps, 100.0 * hetero.watts / big.watts);
  return 0;
}
